"""Command-line interface for the Nada reproduction.

Three subcommands cover the common workflows:

``run``
    Run a Nada campaign in one of the paper's environments and print the
    resulting summary and best design.

``traces``
    Generate a synthetic trace dataset (train/test split) and write it to disk
    in Pensieve format (one ``.log`` file per trace).

``baselines``
    Evaluate the classic ABR baselines (and optionally a freshly trained
    original-Pensieve agent) on an environment's test traces.

Invoke via ``python -m repro <subcommand> --help``.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import Optional, Sequence

import numpy as np

from . import nn
from .abr import make_baseline, run_session, synthetic_video
from .analysis import render_table
from .core import EvaluationConfig, NadaConfig, NadaPipeline
from .rl import A2CConfig
from .traces import ENVIRONMENTS, build_dataset, list_environments, save_traceset

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """Create the top-level argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Nada (HotNets 2024) reproduction: LLM-driven network "
                    "algorithm design for ABR streaming.")
    subparsers = parser.add_subparsers(dest="command", required=True)

    run = subparsers.add_parser("run", help="run a Nada design campaign")
    run.add_argument("--environment", choices=list_environments(), default="fcc")
    run.add_argument("--target", choices=["state", "network", "both"],
                     default="state")
    run.add_argument("--llm", choices=["gpt-3.5", "gpt-4"], default="gpt-4",
                     help="synthetic LLM profile to use")
    run.add_argument("--num-designs", type=int, default=10)
    run.add_argument("--train-epochs", type=int, default=60)
    run.add_argument("--checkpoint-interval", type=int, default=15)
    run.add_argument("--num-seeds", type=int, default=2)
    run.add_argument("--num-chunks", type=int, default=16)
    run.add_argument("--dataset-scale", type=float, default=0.05,
                     help="fraction of the published dataset size to generate")
    run.add_argument("--no-early-stopping", action="store_true")
    run.add_argument("--seed", type=int, default=0)
    run.add_argument("--workers", type=int, default=1,
                     help="worker processes for the (design, seed) evaluation "
                          "fan-out; -1 uses every CPU, 1 runs serially")
    run.add_argument("--dtype", choices=["float32", "float64"], default="float64",
                     help="tensor dtype: float64 (accuracy-first default) or "
                          "float32 (fast path)")
    run.add_argument("--no-lockstep", action="store_true",
                     help="disable the multi-seed lockstep trainer (stacked "
                          "per-seed weights, batched fused updates) and train "
                          "every seed separately; results are identical, "
                          "lockstep is just faster on one core")
    run.add_argument("--show-code", action="store_true",
                     help="print the best design's source code")

    traces = subparsers.add_parser("traces", help="generate a trace dataset")
    traces.add_argument("--environment", choices=list_environments(),
                        default="fcc")
    traces.add_argument("--scale", type=float, default=0.1)
    traces.add_argument("--seed", type=int, default=0)
    traces.add_argument("--output", required=True,
                        help="directory for the generated .log trace files")

    baselines = subparsers.add_parser(
        "baselines", help="evaluate classic ABR baselines on an environment")
    baselines.add_argument("--environment", choices=list_environments(),
                           default="fcc")
    baselines.add_argument("--dataset-scale", type=float, default=0.05)
    baselines.add_argument("--num-chunks", type=int, default=16)
    baselines.add_argument("--seed", type=int, default=0)
    baselines.add_argument("--policies", nargs="+",
                           default=["bba", "rate_based", "bola", "mpc"])
    return parser


def _command_run(args: argparse.Namespace) -> int:
    nn.set_default_dtype(args.dtype)
    config = NadaConfig(
        target=args.target,
        num_designs=args.num_designs,
        llm=args.llm,
        evaluation=EvaluationConfig(
            train_epochs=args.train_epochs,
            checkpoint_interval=args.checkpoint_interval,
            last_k_checkpoints=max(1, min(10, args.train_epochs
                                          // max(args.checkpoint_interval, 1))),
            num_seeds=args.num_seeds,
            a2c=A2CConfig(entropy_anneal_epochs=max(args.train_epochs // 2, 1)),
            lockstep_training=not args.no_lockstep,
        ),
        use_early_stopping=not args.no_early_stopping,
        seed=args.seed,
        workers=args.workers,
    )
    pipeline = NadaPipeline.for_environment(
        args.environment, config=config, dataset_scale=args.dataset_scale,
        num_chunks=args.num_chunks, seed=args.seed)
    print(f"running Nada on {args.environment} "
          f"(target={args.target}, llm={args.llm}, designs={args.num_designs})")
    result = pipeline.run()
    print()
    print(result.summary())
    if args.show_code and result.best_design is not None:
        print()
        print(result.best_design.code)
    return 0


def _command_traces(args: argparse.Namespace) -> int:
    train, test = build_dataset(args.environment, seed=args.seed, scale=args.scale)
    train_dir = os.path.join(args.output, "train")
    test_dir = os.path.join(args.output, "test")
    save_traceset(train, train_dir)
    save_traceset(test, test_dir)
    print(f"wrote {len(train)} training traces to {train_dir}")
    print(f"wrote {len(test)} test traces to {test_dir}")
    print(f"mean throughput: train {train.mean_throughput_mbps:.2f} Mbps, "
          f"test {test.mean_throughput_mbps:.2f} Mbps")
    return 0


def _command_baselines(args: argparse.Namespace) -> int:
    spec = ENVIRONMENTS[args.environment]
    _, test = build_dataset(args.environment, seed=args.seed,
                            scale=args.dataset_scale)
    video = synthetic_video(spec.bitrate_ladder, num_chunks=args.num_chunks,
                            seed=args.seed)
    rows = []
    for name in args.policies:
        scores = []
        for trace in test:
            policy = make_baseline(name)
            scores.append(run_session(policy, video, trace).mean_reward)
        rows.append([name, f"{float(np.mean(scores)):.3f}"])
    print(render_table(["baseline", "mean QoE per chunk"], rows,
                       title=f"{spec.display_name} test traces "
                             f"({len(test)} traces, {video.num_chunks} chunks)"))
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    handlers = {
        "run": _command_run,
        "traces": _command_traces,
        "baselines": _command_baselines,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
