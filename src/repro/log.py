"""Logging for the repro package.

All status reporting (progress lines, cache statistics, fallback notices)
goes through stdlib :mod:`logging` under the ``repro`` logger hierarchy so
the CLI's ``--verbose``/``--quiet`` flags control it uniformly.  User-facing
*results* — summary tables, scores, the store hit/miss line printed after a
campaign — stay on stdout via ``print``; only commentary lives here.

Library code never configures handlers (standard practice); the CLI calls
:func:`configure` once per invocation.
"""

from __future__ import annotations

import logging
import sys
from typing import Optional, TextIO

__all__ = ["LOGGER_NAME", "get_logger", "configure"]

#: Root of the package's logger hierarchy.
LOGGER_NAME = "repro"


def get_logger(name: Optional[str] = None) -> logging.Logger:
    """A logger under the ``repro`` hierarchy (e.g. ``repro.scheduler``)."""
    if name:
        return logging.getLogger(f"{LOGGER_NAME}.{name}")
    return logging.getLogger(LOGGER_NAME)


def configure(verbosity: int = 0,
              stream: Optional[TextIO] = None) -> logging.Logger:
    """Configure the ``repro`` logger for a CLI invocation.

    Args:
        verbosity: ``< 0`` shows warnings only (``--quiet``), ``0`` shows
            progress at INFO (the default), ``> 0`` enables DEBUG detail
            (``--verbose``).
        stream: Destination for log lines; defaults to stderr so stdout
            stays reserved for result tables and machine-readable output.

    Idempotent: repeated calls adjust the level without stacking handlers.
    """
    logger = logging.getLogger(LOGGER_NAME)
    if verbosity < 0:
        level = logging.WARNING
    elif verbosity == 0:
        level = logging.INFO
    else:
        level = logging.DEBUG
    logger.setLevel(level)
    logger.propagate = False
    handler = next((h for h in logger.handlers
                    if getattr(h, "_repro_cli", False)), None)
    if handler is None:
        handler = logging.StreamHandler(stream or sys.stderr)
        handler.setFormatter(logging.Formatter("[%(name)s] %(message)s"))
        handler._repro_cli = True  # type: ignore[attr-defined]
        logger.addHandler(handler)
    elif stream is not None:
        handler.setStream(stream)
    return logger
