"""Tests for optimizers, loss functions and checkpoint serialization."""

import numpy as np
import pytest

from repro import nn


def _quadratic_problem(optimizer_factory, steps=200):
    """Minimize ||w - target||^2 with the given optimizer; return final w."""
    target = np.array([1.0, -2.0, 3.0])
    w = nn.Parameter(np.zeros(3))
    optimizer = optimizer_factory([w])
    for _ in range(steps):
        loss = ((w - nn.tensor(target)) ** 2).sum()
        optimizer.zero_grad()
        loss.backward()
        optimizer.step()
    return w.data, target


class TestOptimizers:
    def test_sgd_converges_on_quadratic(self):
        final, target = _quadratic_problem(lambda p: nn.SGD(p, lr=0.1))
        np.testing.assert_allclose(final, target, atol=1e-3)

    def test_sgd_with_momentum_converges(self):
        final, target = _quadratic_problem(lambda p: nn.SGD(p, lr=0.05, momentum=0.9))
        np.testing.assert_allclose(final, target, atol=1e-3)

    def test_rmsprop_converges(self):
        final, target = _quadratic_problem(lambda p: nn.RMSProp(p, lr=0.05), steps=500)
        np.testing.assert_allclose(final, target, atol=1e-2)

    def test_adam_converges(self):
        final, target = _quadratic_problem(lambda p: nn.Adam(p, lr=0.1), steps=500)
        np.testing.assert_allclose(final, target, atol=1e-2)

    def test_weight_decay_shrinks_weights(self):
        w = nn.Parameter(np.array([10.0]))
        optimizer = nn.SGD([w], lr=0.1, weight_decay=1.0)
        for _ in range(50):
            loss = (w * 0.0).sum()  # zero data gradient; only decay acts
            optimizer.zero_grad()
            loss.backward()
            optimizer.step()
        assert abs(w.data[0]) < 10.0

    def test_optimizer_requires_parameters(self):
        with pytest.raises(ValueError):
            nn.SGD([], lr=0.1)

    def test_optimizer_requires_positive_lr(self):
        with pytest.raises(ValueError):
            nn.Adam([nn.Parameter(np.zeros(1))], lr=0.0)

    def test_step_skips_parameters_without_grad(self):
        w = nn.Parameter(np.array([1.0]))
        optimizer = nn.Adam([w], lr=0.1)
        optimizer.step()  # no grad yet; must not raise or change the value
        assert w.data[0] == 1.0

    def test_clip_grad_norm_scales_down(self):
        w = nn.Parameter(np.zeros(4))
        w.grad = np.full(4, 10.0)
        norm_before = nn.clip_grad_norm([w], max_norm=1.0)
        assert norm_before == pytest.approx(20.0)
        assert np.linalg.norm(w.grad) == pytest.approx(1.0)

    def test_clip_grad_norm_no_clip_when_small(self):
        w = nn.Parameter(np.zeros(2))
        w.grad = np.array([0.1, 0.1])
        nn.clip_grad_norm([w], max_norm=10.0)
        np.testing.assert_allclose(w.grad, [0.1, 0.1])

    def test_clip_grad_norm_empty(self):
        w = nn.Parameter(np.zeros(2))
        assert nn.clip_grad_norm([w], max_norm=1.0) == 0.0


class TestLosses:
    def test_mse_loss_value(self):
        pred = nn.tensor([1.0, 2.0, 3.0], requires_grad=True)
        target = nn.tensor([1.0, 0.0, 3.0])
        loss = nn.mse_loss(pred, target)
        assert loss.item() == pytest.approx(4.0 / 3.0)
        loss.backward()
        np.testing.assert_allclose(pred.grad, [0.0, 4.0 / 3.0, 0.0])

    def test_huber_matches_mse_for_small_errors(self):
        pred = nn.tensor([0.1, -0.2])
        target = nn.tensor([0.0, 0.0])
        huber = nn.huber_loss(pred, target, delta=1.0).item()
        expected = 0.5 * np.mean([0.1 ** 2, 0.2 ** 2])
        assert huber == pytest.approx(expected)

    def test_huber_linear_for_large_errors(self):
        pred = nn.tensor([10.0])
        target = nn.tensor([0.0])
        huber = nn.huber_loss(pred, target, delta=1.0).item()
        assert huber == pytest.approx(0.5 + (10.0 - 1.0))

    def test_binary_cross_entropy_perfect_prediction(self):
        pred = nn.tensor([0.9999999, 0.0000001])
        target = nn.tensor([1.0, 0.0])
        assert nn.binary_cross_entropy(pred, target).item() < 1e-3

    def test_binary_cross_entropy_wrong_prediction_is_large(self):
        pred = nn.tensor([0.01])
        target = nn.tensor([1.0])
        assert nn.binary_cross_entropy(pred, target).item() > 2.0

    def test_cross_entropy_uniform_logits(self):
        logits = nn.tensor(np.zeros((2, 4)), requires_grad=True)
        loss = nn.cross_entropy(logits, np.array([0, 3]))
        assert loss.item() == pytest.approx(np.log(4.0))
        loss.backward()
        assert logits.grad is not None

    def test_policy_gradient_loss_sign(self):
        # Positive advantage on a likely action should give a negative loss.
        log_probs = nn.tensor([-0.1, -0.1])
        loss = nn.policy_gradient_loss(log_probs, np.array([1.0, 1.0]))
        assert loss.item() > 0.0  # -(log_prob * adv) with negative log_prob
        loss2 = nn.policy_gradient_loss(log_probs, np.array([-1.0, -1.0]))
        assert loss2.item() < 0.0

    def test_entropy_maximal_for_uniform(self):
        uniform = nn.tensor(np.full((1, 4), 0.25))
        peaked = nn.tensor([[0.97, 0.01, 0.01, 0.01]])
        assert nn.entropy(uniform).item() > nn.entropy(peaked).item()
        assert nn.entropy(uniform).item() == pytest.approx(np.log(4.0), rel=1e-6)


class TestSerialization:
    def test_save_and_load_module(self, tmp_path):
        model = nn.Sequential(nn.Dense(4, 8, rng=np.random.default_rng(0)),
                              nn.Dense(8, 2, rng=np.random.default_rng(1)))
        path = str(tmp_path / "checkpoint.npz")
        nn.save_module(model, path)

        clone = nn.Sequential(nn.Dense(4, 8, rng=np.random.default_rng(9)),
                              nn.Dense(8, 2, rng=np.random.default_rng(10)))
        nn.load_module(clone, path)
        data = np.random.default_rng(3).normal(size=(5, 4))
        np.testing.assert_allclose(model(nn.tensor(data)).numpy(),
                                   clone(nn.tensor(data)).numpy())

    def test_load_state_appends_npz_suffix(self, tmp_path):
        model = nn.Dense(2, 2)
        path = str(tmp_path / "model")
        nn.save_module(model, path + ".npz")
        state = nn.load_state(path)
        assert set(state) == set(model.state_dict())

    def test_save_creates_directories(self, tmp_path):
        model = nn.Dense(2, 2)
        path = str(tmp_path / "nested" / "dir" / "model.npz")
        nn.save_module(model, path)
        assert (tmp_path / "nested" / "dir" / "model.npz").exists()
