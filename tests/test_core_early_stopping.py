"""Tests for the early-stopping classifier and the alternative predictors."""

import numpy as np
import pytest

from repro.core import (
    DesignSampleFeatures,
    EarlyStoppingConfig,
    HeuristicLastPredictor,
    HeuristicMaxPredictor,
    PREDICTOR_REGISTRY,
    RewardOnlyPredictor,
    RewardTrajectoryClassifier,
    TextOnlyPredictor,
    TextRewardPredictor,
    classification_rates,
    cross_validate_predictors,
    evaluate_predictor,
    make_predictor,
    prepare_reward_prefix,
    top_fraction_labels,
    tune_threshold_zero_fnr,
)


def make_corpus(n=60, prefix_length=10, seed=0, signal_strength=1.0):
    """Synthetic design corpus: early rewards are predictive of final scores.

    Good designs ramp up quickly; bad designs stay flat or decline — mirroring
    how training-reward trajectories separate promising ABR designs.
    """
    rng = np.random.default_rng(seed)
    samples = []
    for index in range(n):
        quality = rng.uniform(0.0, 1.0)
        slope = signal_strength * quality
        noise = rng.normal(0, 0.2, size=prefix_length)
        prefix = slope * np.linspace(0, 1, prefix_length) + noise
        final = quality * 10.0 + rng.normal(0, 0.3)
        code = f"def state_func():\n    return {quality:.3f}  # variant {index}"
        samples.append(DesignSampleFeatures(reward_prefix=list(prefix), code=code,
                                            final_score=float(final)))
    return samples


class TestHelpers:
    def test_prepare_reward_prefix_pads_with_last_value(self):
        np.testing.assert_allclose(prepare_reward_prefix([1.0, 2.0], 5),
                                    [1.0, 2.0, 2.0, 2.0, 2.0])

    def test_prepare_reward_prefix_truncates(self):
        np.testing.assert_allclose(prepare_reward_prefix(range(10), 3), [0, 1, 2])

    def test_prepare_reward_prefix_empty(self):
        np.testing.assert_allclose(prepare_reward_prefix([], 4), np.zeros(4))

    def test_top_fraction_labels_counts(self):
        labels = top_fraction_labels(np.arange(100.0), 0.2)
        assert labels.sum() == 20
        assert labels[-1] == 1 and labels[0] == 0

    def test_top_fraction_labels_at_least_one_positive(self):
        labels = top_fraction_labels([1.0, 2.0, 3.0], 0.01)
        assert labels.sum() == 1
        assert labels[2] == 1

    def test_top_fraction_labels_validation(self):
        with pytest.raises(ValueError):
            top_fraction_labels([1.0], 0.0)
        assert top_fraction_labels([], 0.5).size == 0

    def test_tune_threshold_keeps_all_positives(self):
        scores = np.array([0.9, 0.8, 0.1, 0.2, 0.85])
        labels = np.array([1, 1, 0, 0, 0])
        threshold = tune_threshold_zero_fnr(scores, labels)
        rates = classification_rates(scores, labels, threshold)
        assert rates["false_negative_rate"] == 0.0
        assert rates["true_negative_rate"] == pytest.approx(2.0 / 3.0)

    def test_tune_threshold_no_positives(self):
        assert tune_threshold_zero_fnr(np.array([0.5]), np.array([0])) == float("-inf")

    def test_classification_rates_edge_cases(self):
        rates = classification_rates(np.array([0.9, 0.1]), np.array([1, 0]), 0.5)
        assert rates["false_negative_rate"] == 0.0
        assert rates["true_negative_rate"] == 1.0
        assert rates["num_positives"] == 1 and rates["num_negatives"] == 1


class TestRewardTrajectoryClassifier:
    def test_fit_predict_and_zero_train_fnr(self):
        samples = make_corpus(n=50, seed=1)
        config = EarlyStoppingConfig(reward_prefix_length=10, training_epochs=60,
                                     top_fraction=0.1, smoothed_fraction=0.3, seed=0)
        classifier = RewardTrajectoryClassifier(config)
        prefixes = [s.reward_prefix for s in samples]
        finals = [s.final_score for s in samples]
        classifier.fit(prefixes, finals)

        rates = classifier.evaluate(prefixes, finals)
        assert rates["false_negative_rate"] == 0.0
        assert rates["true_negative_rate"] > 0.3

    def test_decision_interface(self):
        samples = make_corpus(n=40, seed=2)
        config = EarlyStoppingConfig(training_epochs=40, top_fraction=0.1,
                                     smoothed_fraction=0.3)
        classifier = RewardTrajectoryClassifier(config).fit(
            [s.reward_prefix for s in samples], [s.final_score for s in samples])
        strong = [2.0] * 10   # clearly climbing rewards
        weak = [-2.0] * 10
        decision = classifier.decide(strong)
        assert 0.0 <= decision.score <= 1.0
        # A hopeless trajectory is more likely to be stopped than a strong one.
        assert classifier.predict_scores([weak])[0] <= \
            classifier.predict_scores([strong])[0] + 1e-6
        assert isinstance(classifier.should_stop(weak), bool)

    def test_unfitted_classifier_raises(self):
        classifier = RewardTrajectoryClassifier()
        with pytest.raises(RuntimeError):
            classifier.predict_scores([[1.0]])
        with pytest.raises(RuntimeError):
            classifier.should_stop([1.0])

    def test_unfitted_evaluate_raises_runtime_error(self):
        # evaluate() used to pass threshold=None into classification_rates,
        # failing with a TypeError on ``scores >= None``; it must raise the
        # same "not fitted" RuntimeError as the other entry points — even
        # when a model is present but the threshold was never tuned.
        classifier = RewardTrajectoryClassifier()
        with pytest.raises(RuntimeError, match="has not been fitted"):
            classifier.evaluate([[1.0, 2.0]], [0.5])
        config = EarlyStoppingConfig(reward_prefix_length=2, training_epochs=2)
        fitted = RewardTrajectoryClassifier(config)
        fitted.fit([[0.0, 0.1], [0.2, 0.3], [0.1, 0.2], [0.4, 0.5]],
                   [0.1, 0.9, 0.2, 0.8])
        fitted.threshold = None
        with pytest.raises(RuntimeError, match="has not been fitted"):
            fitted.evaluate([[1.0, 2.0]], [0.5])

    def test_fit_validation(self):
        classifier = RewardTrajectoryClassifier()
        with pytest.raises(ValueError):
            classifier.fit([[1.0]], [1.0, 2.0])
        with pytest.raises(ValueError):
            classifier.fit([[1.0]] * 2, [1.0, 2.0])


class TestPredictors:
    @pytest.fixture(scope="class")
    def corpus(self):
        return make_corpus(n=60, seed=3)

    def _fast_kwargs(self, name):
        if name == "reward_only":
            return {"config": EarlyStoppingConfig(training_epochs=40,
                                                  top_fraction=0.1,
                                                  smoothed_fraction=0.3)}
        if name in ("text_only", "text_reward"):
            return {"epochs": 40, "top_fraction": 0.1, "smoothed_fraction": 0.3}
        return {"top_fraction": 0.1}

    @pytest.mark.parametrize("name", sorted(PREDICTOR_REGISTRY))
    def test_every_predictor_fits_and_scores(self, corpus, name):
        predictor = make_predictor(name, **self._fast_kwargs(name))
        train, test = corpus[:40], corpus[40:]
        rates = evaluate_predictor(predictor, train, test, top_fraction=0.1)
        assert 0.0 <= rates["false_negative_rate"] <= 1.0
        assert 0.0 <= rates["true_negative_rate"] <= 1.0
        scores = predictor.predict_scores(test)
        assert scores.shape == (len(test),)

    def test_make_predictor_unknown(self):
        with pytest.raises(KeyError):
            make_predictor("oracle")

    def test_heuristic_max_scores(self, corpus):
        predictor = HeuristicMaxPredictor(top_fraction=0.1)
        predictor.fit(corpus)
        scores = predictor.predict_scores(corpus[:3])
        expected = [max(prepare_reward_prefix(s.reward_prefix, 10))
                    for s in corpus[:3]]
        np.testing.assert_allclose(scores, expected)

    def test_heuristic_last_scores(self, corpus):
        predictor = HeuristicLastPredictor(top_fraction=0.1)
        predictor.fit(corpus)
        scores = predictor.predict_scores(corpus[:3])
        expected = [prepare_reward_prefix(s.reward_prefix, 10)[-1]
                    for s in corpus[:3]]
        np.testing.assert_allclose(scores, expected)

    def test_unfitted_predictors_raise(self):
        with pytest.raises(RuntimeError):
            TextOnlyPredictor().predict_scores(make_corpus(4))
        with pytest.raises(RuntimeError):
            _ = HeuristicMaxPredictor().threshold

    def test_reward_only_outperforms_text_only_on_reward_driven_corpus(self, corpus):
        """The paper's headline finding: reward features beat text features."""
        kwargs_r = self._fast_kwargs("reward_only")
        kwargs_t = self._fast_kwargs("text_only")
        train, test = corpus[:40], corpus[40:]
        reward_rates = evaluate_predictor(RewardOnlyPredictor(**kwargs_r),
                                          train, test, top_fraction=0.1)
        text_rates = evaluate_predictor(TextOnlyPredictor(**kwargs_t),
                                        train, test, top_fraction=0.1)
        reward_quality = reward_rates["true_negative_rate"] - reward_rates["false_negative_rate"]
        text_quality = text_rates["true_negative_rate"] - text_rates["false_negative_rate"]
        assert reward_quality >= text_quality - 0.05


class TestCrossValidation:
    def test_cross_validate_returns_all_predictors(self):
        corpus = make_corpus(n=50, seed=4)
        results = cross_validate_predictors(
            corpus,
            predictor_names=("reward_only", "heuristic_max", "heuristic_last"),
            num_folds=2, train_fraction_per_fold=0.4, top_fraction=0.1, seed=0,
            predictor_kwargs={
                "reward_only": {"config": EarlyStoppingConfig(
                    training_epochs=30, top_fraction=0.1, smoothed_fraction=0.3)},
                "heuristic_max": {"top_fraction": 0.1},
                "heuristic_last": {"top_fraction": 0.1},
            })
        assert [r.name for r in results] == ["reward_only", "heuristic_max",
                                             "heuristic_last"]
        for result in results:
            assert 0.0 <= result.false_negative_rate <= 1.0
            assert 0.0 <= result.true_negative_rate <= 1.0
            assert len(result.fold_details) == 2

    def test_cross_validate_requires_enough_samples(self):
        with pytest.raises(ValueError):
            cross_validate_predictors(make_corpus(5))
