"""Tests for the trace data structures, synthetic generators and loaders."""

import numpy as np
import pytest

from repro.traces import (
    ENVIRONMENTS,
    PAPER_TABLE1,
    STARLINK_PEAK_HOUR_CAPACITY_FACTOR,
    Trace,
    TraceSet,
    build_dataset,
    compute_dataset_stats,
    fcc_dataset,
    generate_4g_trace,
    generate_5g_trace,
    generate_fcc_trace,
    generate_starlink_trace,
    list_environments,
    load_mahimahi_format,
    load_pensieve_format,
    load_traceset,
    lte_dataset,
    nr5g_dataset,
    save_mahimahi_format,
    save_pensieve_format,
    save_traceset,
    starlink_dataset,
)


class TestTrace:
    def test_basic_properties(self):
        trace = Trace([0.0, 1.0, 2.0, 3.0], [1.0, 2.0, 3.0, 4.0], name="t")
        assert len(trace) == 4
        assert trace.duration_s == pytest.approx(3.0)
        assert trace.min_throughput_mbps == 1.0
        assert trace.max_throughput_mbps == 4.0
        assert trace.mean_throughput_mbps == pytest.approx(2.0)  # samples 1,2,3 weighted

    def test_validation_rejects_bad_input(self):
        with pytest.raises(ValueError):
            Trace([0.0], [1.0])  # too short
        with pytest.raises(ValueError):
            Trace([0.0, 1.0], [1.0])  # length mismatch
        with pytest.raises(ValueError):
            Trace([0.0, 0.0], [1.0, 1.0])  # non-increasing timestamps
        with pytest.raises(ValueError):
            Trace([0.0, 1.0], [1.0, -1.0])  # negative throughput
        with pytest.raises(ValueError):
            Trace(np.zeros((2, 2)), np.zeros((2, 2)))  # wrong dimensionality

    def test_throughput_at_and_wraparound(self):
        trace = Trace([0.0, 10.0, 20.0], [1.0, 5.0, 9.0])
        assert trace.throughput_at(0.0) == 1.0
        assert trace.throughput_at(10.5) == 5.0
        # Beyond the end the trace repeats cyclically.
        assert trace.throughput_at(20.0 + 0.5) == 1.0
        assert trace.throughput_at(20.0 + 10.5) == 5.0

    def test_iter_segments(self):
        trace = Trace([0.0, 2.0, 5.0], [1.0, 2.0, 3.0])
        segments = list(trace.iter_segments())
        assert segments == [(0.0, 2.0, 1.0), (2.0, 3.0, 2.0)]

    def test_scaled(self):
        trace = Trace([0.0, 1.0], [8.0, 8.0])
        scaled = trace.scaled(0.125)
        assert scaled.max_throughput_mbps == pytest.approx(1.0)
        with pytest.raises(ValueError):
            trace.scaled(0.0)

    def test_sliced(self):
        trace = Trace(np.arange(0.0, 100.0, 1.0), np.arange(100.0) + 1.0)
        part = trace.sliced(10.0, 20.0)
        assert part.timestamps_s[0] == pytest.approx(0.0)
        assert part.duration_s == pytest.approx(10.0)
        with pytest.raises(ValueError):
            trace.sliced(20.0, 10.0)

    def test_resampled_uniform_grid(self):
        trace = Trace([0.0, 1.0, 10.0], [1.0, 2.0, 3.0])
        resampled = trace.resampled(2.0)
        assert np.allclose(np.diff(resampled.timestamps_s), 2.0)
        with pytest.raises(ValueError):
            trace.resampled(0.0)

    def test_with_name(self):
        trace = Trace([0.0, 1.0], [1.0, 1.0]).with_name("renamed")
        assert trace.name == "renamed"


class TestTraceSet:
    def _make(self, n=4):
        return TraceSet([Trace([0.0, 60.0], [float(i + 1), float(i + 1)],
                               name=f"t{i}") for i in range(n)], name="set")

    def test_len_iter_getitem(self):
        ts = self._make()
        assert len(ts) == 4
        assert ts[0].name == "t0"
        assert len(list(ts)) == 4

    def test_requires_at_least_one_trace(self):
        with pytest.raises(ValueError):
            TraceSet([])

    def test_total_hours(self):
        ts = self._make(6)
        assert ts.total_hours == pytest.approx(6 * 60.0 / 3600.0)

    def test_mean_throughput_weighted(self):
        ts = self._make(3)  # throughputs 1, 2, 3 with equal duration
        assert ts.mean_throughput_mbps == pytest.approx(2.0)

    def test_std_throughput_time_weighted(self):
        # Hand-computed: rates 1 and 5 Mbit/s held for 3 s and 1 s.  The
        # time-weighted mean is (1*3 + 5*1)/4 = 2, so the time-weighted
        # variance is (3*(1-2)^2 + 1*(5-2)^2)/4 = 3 and the std sqrt(3).
        # A sample-weighted std would give 2.0 over the samples (1, 5) —
        # the bug this pins against.
        trace = Trace(np.array([0.0, 3.0, 4.0]), np.array([1.0, 5.0, 7.0]),
                      name="handmade")
        assert trace.std_throughput_mbps == pytest.approx(np.sqrt(3.0))
        # Uniform sampling reduces to the ordinary sample std of the held
        # rates, matching the time-weighted mean's conventions.
        uniform = Trace(np.array([0.0, 1.0, 2.0, 3.0]),
                        np.array([1.0, 2.0, 3.0, 9.0]), name="uniform")
        assert uniform.std_throughput_mbps == pytest.approx(
            np.std([1.0, 2.0, 3.0]))

    def test_sample_is_member(self, rng):
        ts = self._make()
        assert ts.sample(rng) in list(ts)

    def test_split_fractions(self, rng):
        ts = self._make(10)
        train, test = ts.split(0.7, rng)
        assert len(train) == 7 and len(test) == 3
        with pytest.raises(ValueError):
            ts.split(1.5)

    def test_scaled(self):
        ts = self._make(2).scaled(2.0)
        assert ts[0].max_throughput_mbps == pytest.approx(2.0)


class TestSyntheticGenerators:
    @pytest.mark.parametrize("generator,target_mean,tolerance", [
        (generate_fcc_trace, 1.3, 0.6),
        (generate_4g_trace, 19.8, 10.0),
        (generate_5g_trace, 30.2, 18.0),
    ])
    def test_mean_throughput_in_range(self, generator, target_mean, tolerance):
        means = [generator(duration_s=600, seed=i).mean_throughput_mbps
                 for i in range(5)]
        assert abs(np.mean(means) - target_mean) < tolerance

    def test_starlink_peak_hour_reduction(self):
        full = generate_starlink_trace(duration_s=400, seed=0,
                                       apply_peak_hour_reduction=False)
        reduced = generate_starlink_trace(duration_s=400, seed=0,
                                          apply_peak_hour_reduction=True)
        ratio = reduced.mean_throughput_mbps / full.mean_throughput_mbps
        assert ratio == pytest.approx(STARLINK_PEAK_HOUR_CAPACITY_FACTOR, rel=1e-6)

    def test_generators_are_deterministic_per_seed(self):
        a = generate_fcc_trace(seed=42)
        b = generate_fcc_trace(seed=42)
        np.testing.assert_array_equal(a.throughputs_mbps, b.throughputs_mbps)
        c = generate_fcc_trace(seed=43)
        assert not np.array_equal(a.throughputs_mbps, c.throughputs_mbps)

    def test_all_generators_nonnegative(self):
        for generator in (generate_fcc_trace, generate_starlink_trace,
                          generate_4g_trace, generate_5g_trace):
            trace = generator(duration_s=300, seed=1)
            assert np.all(trace.throughputs_mbps >= 0)

    def test_5g_more_variable_than_fcc(self):
        fcc = generate_fcc_trace(duration_s=600, seed=0)
        nr = generate_5g_trace(duration_s=600, seed=0)
        assert nr.std_throughput_mbps > fcc.std_throughput_mbps


class TestDatasetBuilders:
    def test_scaled_down_counts(self):
        train, test = fcc_dataset(seed=0, scale=0.05)
        spec = PAPER_TABLE1["fcc"]
        assert len(train) == max(1, round(spec.train_traces * 0.05))
        assert len(test) == max(1, round(spec.test_traces * 0.05))

    def test_full_scale_counts_match_table1(self):
        # Only check the smallest dataset at full scale to keep the test fast.
        train, test = starlink_dataset(seed=0, scale=1.0)
        assert len(train) == PAPER_TABLE1["starlink"].train_traces
        assert len(test) == PAPER_TABLE1["starlink"].test_traces

    def test_invalid_scale_raises(self):
        with pytest.raises(ValueError):
            lte_dataset(scale=0.0)
        with pytest.raises(ValueError):
            nr5g_dataset(scale=1.5)

    def test_registry_builds_all_environments(self):
        assert list_environments() == ["fcc", "starlink", "4g", "5g"]
        for name in list_environments():
            train, test = build_dataset(name, seed=0, scale=0.02)
            assert len(train) >= 1 and len(test) >= 1

    def test_registry_unknown_environment(self):
        with pytest.raises(KeyError):
            build_dataset("6g")

    def test_environment_spec_fields(self):
        spec = ENVIRONMENTS["4g"]
        assert spec.bitrate_ladder == "high"
        assert spec.train_epochs == 40_000

    def test_compute_dataset_stats(self):
        train, test = starlink_dataset(seed=0, scale=0.5)
        stats = compute_dataset_stats("starlink", train, test)
        assert stats.train_traces == len(train)
        assert stats.test_traces == len(test)
        assert stats.train_epochs == PAPER_TABLE1["starlink"].train_epochs
        assert stats.throughput_mbps > 0
        row = stats.as_row()
        assert row[0] == "starlink"
        assert len(row) == 8


class TestLoaders:
    def test_pensieve_roundtrip(self, tmp_path):
        trace = generate_fcc_trace(duration_s=100, seed=0)
        path = str(tmp_path / "trace.log")
        save_pensieve_format(trace, path)
        loaded = load_pensieve_format(path)
        np.testing.assert_allclose(loaded.timestamps_s, trace.timestamps_s, atol=1e-5)
        np.testing.assert_allclose(loaded.throughputs_mbps, trace.throughputs_mbps,
                                   atol=1e-5)

    def test_pensieve_loader_rejects_malformed(self, tmp_path):
        path = tmp_path / "bad.log"
        path.write_text("not-a-number\n")
        with pytest.raises(ValueError):
            load_pensieve_format(str(path))

    def test_mahimahi_roundtrip_preserves_mean_rate(self, tmp_path):
        trace = Trace(np.arange(0.0, 30.0, 1.0), np.full(30, 6.0), name="const6")
        path = str(tmp_path / "mahimahi.trace")
        save_mahimahi_format(trace, path, granularity_ms=100)
        loaded = load_mahimahi_format(path, granularity_ms=1000)
        assert loaded.mean_throughput_mbps == pytest.approx(6.0, rel=0.1)

    def test_mahimahi_empty_file_raises(self, tmp_path):
        path = tmp_path / "empty.trace"
        path.write_text("")
        with pytest.raises(ValueError):
            load_mahimahi_format(str(path))

    def test_traceset_directory_roundtrip(self, tmp_path, fcc_traceset):
        directory = str(tmp_path / "traces")
        paths = save_traceset(fcc_traceset, directory)
        assert len(paths) == len(fcc_traceset)
        loaded = load_traceset(directory)
        assert len(loaded) == len(fcc_traceset)

    def test_load_traceset_empty_directory(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_traceset(str(tmp_path))
