"""Seed-for-seed equivalence suite for the multi-seed lockstep trainer.

The lockstep engine's contract is that training all seeds of a design
simultaneously (stacked weights, batched fused updates) is indistinguishable
from the serial per-seed trainer: identical trace choices, identical action
sequences, weights and :class:`TrainingRun` records matching to <= 1e-9 in
both float32 and float64.  These tests pin that contract, plus the stacked
kernels and optimizers it is built from.
"""

import numpy as np
import pytest

from repro import nn
from repro.abr.env import StreamingSession
from repro.abr.networks import GenericActorCritic, PensieveSeedStack
from repro.abr.state import StateFunction, original_states_batched
from repro.analysis.experiments import ExperimentScale, build_environment
from repro.core.design import Design, DesignKind
from repro.core.evaluation import (DesignTrainer, EvaluationConfig,
                                   TestScoreProtocol, instantiate_agent)
from repro.core.early_stopping import EarlyStoppingConfig, RewardTrajectoryClassifier
from repro.rl.a2c import (A2CConfig, A2CTrainer, MultiSeedA2CTrainer,
                          evaluate_agent)

SEEDS = [0, 1, 2]


@pytest.fixture(scope="module")
def env_setup():
    return build_environment("fcc", ExperimentScale(dataset_scale=0.03,
                                                    num_chunks=10, seed=0))


def _agents(setup, seeds):
    return [instantiate_agent(None, None, setup.video, setup.train_traces,
                              seed=seed) for seed in seeds]


def _serial_trainers(setup, seeds, config):
    return [A2CTrainer(agent, setup.video, setup.train_traces, qoe=setup.qoe,
                       config=config, seed=seed)
            for agent, seed in zip(_agents(setup, seeds), seeds)]


@pytest.fixture
def dtype_guard():
    previous = nn.get_default_dtype()
    yield
    nn.set_default_dtype(previous)


# --------------------------------------------------------------------------- #
# Trainer equivalence
# --------------------------------------------------------------------------- #
@pytest.mark.parametrize("dtype", ["float64", "float32"])
def test_lockstep_matches_serial_seed_for_seed(env_setup, dtype, dtype_guard,
                                               monkeypatch):
    nn.set_default_dtype(dtype)
    setup = env_setup
    # A non-default critic_lr so the per-group learning rates are exercised.
    config = A2CConfig(critic_lr=3e-3, entropy_anneal_epochs=8)
    epochs = 10

    recorded = []
    original_step = StreamingSession.step

    def recording_step(self, bitrate_index):
        recorded.append(bitrate_index)
        return original_step(self, bitrate_index)

    monkeypatch.setattr(StreamingSession, "step", recording_step)

    serial = _serial_trainers(setup, SEEDS, config)
    serial_actions = []
    for trainer in serial:
        recorded.clear()
        trainer.train(epochs)
        serial_actions.append(list(recorded))

    recorded.clear()
    agents = _agents(setup, SEEDS)
    multi = MultiSeedA2CTrainer(agents, setup.video, setup.train_traces,
                                qoe=setup.qoe, config=config, seeds=SEEDS)
    multi.train(epochs)
    lock_flat = list(recorded)

    # Lockstep steps seed-major within each epoch: regroup per seed.
    chunks = setup.video.num_chunks
    lock_actions = [[] for _ in SEEDS]
    position = 0
    for _ in range(epochs):
        for seed_index in range(len(SEEDS)):
            lock_actions[seed_index].extend(
                lock_flat[position:position + chunks])
            position += chunks

    for index, trainer in enumerate(serial):
        # Identical trace choices and action sequences.
        assert ([stats.trace_name for stats in trainer.history]
                == [stats.trace_name for stats in multi.histories[index]])
        assert serial_actions[index] == lock_actions[index]
        # Identical per-epoch statistics.
        for a, b in zip(trainer.history, multi.histories[index]):
            assert a.episode_reward == b.episode_reward
            assert abs(a.actor_loss - b.actor_loss) <= 1e-9
            assert abs(a.critic_loss - b.critic_loss) <= 1e-9
            assert abs(a.entropy - b.entropy) <= 1e-9
            assert abs(a.grad_norm - b.grad_norm) <= 1e-9
        # Weights match to <= 1e-9.
        serial_state = trainer.agent.network.state_dict()
        lock_state = agents[index].network.state_dict()
        for key in serial_state:
            delta = np.max(np.abs(serial_state[key] - lock_state[key]))
            assert delta <= 1e-9, (key, delta)
        # Checkpoint evaluation matches the serial evaluator.
        serial_eval = evaluate_agent(trainer.agent, setup.video,
                                     setup.test_traces, qoe=setup.qoe,
                                     greedy=True, seed=SEEDS[index],
                                     batched=True)
        assert multi.evaluate_checkpoint(setup.test_traces)[index] == \
            pytest.approx(serial_eval, abs=1e-12)


@pytest.mark.parametrize("dtype", ["float64", "float32"])
def test_design_trainer_run_seeds_matches_run(env_setup, dtype, dtype_guard):
    nn.set_default_dtype(dtype)
    setup = env_setup
    config = EvaluationConfig(train_epochs=12, checkpoint_interval=4,
                              last_k_checkpoints=2, num_seeds=len(SEEDS),
                              a2c=A2CConfig(entropy_anneal_epochs=6))
    trainer = DesignTrainer(setup.video, setup.train_traces,
                            setup.test_traces, config=config, qoe=setup.qoe)
    lock_runs = trainer.run_seeds(None, None, SEEDS)
    serial_runs = [trainer.run(None, None, seed=seed) for seed in SEEDS]
    for lock, serial in zip(lock_runs, serial_runs):
        assert lock.seed == serial.seed
        assert lock.checkpoint_epochs == serial.checkpoint_epochs
        assert lock.early_stopped == serial.early_stopped
        assert lock.last_k_checkpoints == serial.last_k_checkpoints
        assert np.allclose(lock.reward_history, serial.reward_history,
                           atol=1e-9, rtol=0.0)
        assert np.allclose(lock.checkpoint_scores, serial.checkpoint_scores,
                           atol=1e-9, rtol=0.0)


def test_protocol_scores_identical_with_and_without_lockstep(env_setup):
    setup = env_setup
    scores = {}
    for lockstep in (True, False):
        config = EvaluationConfig(train_epochs=8, checkpoint_interval=4,
                                  last_k_checkpoints=2, num_seeds=2,
                                  a2c=A2CConfig(entropy_anneal_epochs=4),
                                  lockstep_training=lockstep)
        trainer = DesignTrainer(setup.video, setup.train_traces,
                                setup.test_traces, config=config,
                                qoe=setup.qoe)
        protocol = TestScoreProtocol(trainer)
        scores[lockstep] = protocol.score_original()
    assert scores[True] == scores[False]


def test_lockstep_with_bandwidth_noise_matches_serial(env_setup):
    """Per-seed simulator RNG streams survive lockstep even with noise."""
    from repro.abr.env import SimulatorConfig

    setup = env_setup
    config = EvaluationConfig(
        train_epochs=6, checkpoint_interval=3, last_k_checkpoints=2,
        num_seeds=2, a2c=A2CConfig(entropy_anneal_epochs=4),
        simulator=SimulatorConfig(bandwidth_noise_std=0.1))
    trainer = DesignTrainer(setup.video, setup.train_traces,
                            setup.test_traces, config=config, qoe=setup.qoe)
    lock_runs = trainer.run_seeds(None, None, [0, 1])
    serial_runs = [trainer.run(None, None, seed=seed) for seed in (0, 1)]
    for lock, serial in zip(lock_runs, serial_runs):
        assert np.allclose(lock.reward_history, serial.reward_history,
                           atol=1e-9, rtol=0.0)
        assert np.allclose(lock.checkpoint_scores, serial.checkpoint_scores,
                           atol=1e-9, rtol=0.0)


# --------------------------------------------------------------------------- #
# Fallbacks
# --------------------------------------------------------------------------- #
GENERIC_NETWORK = '''
def build_network(state_shape, num_actions, rng=None):
    return nn_library.GenericActorCritic(state_shape, num_actions,
                                         hidden_sizes=(16, 16), rng=rng)
'''.strip()


def test_run_seeds_falls_back_for_unsupported_networks(env_setup):
    setup = env_setup
    design = Design(design_id="generic-net", kind=DesignKind.NETWORK,
                    code=GENERIC_NETWORK)
    config = EvaluationConfig(train_epochs=4, checkpoint_interval=2,
                              last_k_checkpoints=2, num_seeds=2,
                              a2c=A2CConfig(entropy_anneal_epochs=2))
    trainer = DesignTrainer(setup.video, setup.train_traces,
                            setup.test_traces, config=config, qoe=setup.qoe)
    lock_runs = trainer.run_seeds(None, design, [0, 1])
    serial_runs = [trainer.run(None, design, seed=seed) for seed in (0, 1)]
    for lock, serial in zip(lock_runs, serial_runs):
        assert lock.reward_history == serial.reward_history
        assert lock.checkpoint_scores == serial.checkpoint_scores


def test_run_seeds_falls_back_with_early_stopping(env_setup, monkeypatch):
    setup = env_setup
    config = EvaluationConfig(train_epochs=4, checkpoint_interval=2,
                              last_k_checkpoints=2, num_seeds=2,
                              a2c=A2CConfig(entropy_anneal_epochs=2))
    trainer = DesignTrainer(setup.video, setup.train_traces,
                            setup.test_traces, config=config, qoe=setup.qoe)
    classifier = RewardTrajectoryClassifier(
        EarlyStoppingConfig(reward_prefix_length=2, training_epochs=2))
    classifier.fit([[0.0, 0.1], [0.2, 0.3], [0.1, 0.2], [0.4, 0.5]],
                   [0.1, 0.9, 0.2, 0.8])
    called = []
    monkeypatch.setattr(
        MultiSeedA2CTrainer, "__init__",
        lambda self, *a, **k: called.append(True) or (_ for _ in ()).throw(
            AssertionError("lockstep must not engage with early stopping")))
    runs = trainer.run_seeds(None, None, [0, 1], early_stopping=classifier)
    assert len(runs) == 2
    assert not called


def test_supports_rejects_mixed_and_generic_networks(env_setup):
    setup = env_setup
    agents = _agents(setup, [0, 1])
    assert MultiSeedA2CTrainer.supports([a.network for a in agents])
    generic = GenericActorCritic((6, 8), setup.video.num_bitrates)
    assert not MultiSeedA2CTrainer.supports([agents[0].network, generic])
    assert not PensieveSeedStack.compatible([])


# --------------------------------------------------------------------------- #
# Stacked kernels and optimizers
# --------------------------------------------------------------------------- #
def test_batched_matmul_matches_per_slice():
    rng = np.random.default_rng(0)
    a = rng.standard_normal((4, 5, 7))
    b = rng.standard_normal((4, 7, 3))
    out = nn.batched_matmul(a, b)
    for s in range(4):
        assert np.array_equal(out[s], a[s] @ b[s])
    with pytest.raises(ValueError):
        nn.batched_matmul(a[0], b)
    with pytest.raises(ValueError):
        nn.batched_matmul(a, rng.standard_normal((4, 6, 3)))


def test_clip_grad_norm_stacked_matches_per_seed():
    rng = np.random.default_rng(1)
    shapes = [(3, 5), (7,), (2, 4, 4)]
    seeds = 3
    stacked = []
    per_seed = [[] for _ in range(seeds)]
    for shape in shapes:
        grads = rng.standard_normal((seeds,) + shape) * 4.0
        sp = nn.Parameter(np.zeros((seeds,) + shape))
        sp.grad = grads.copy()
        stacked.append(sp)
        for s in range(seeds):
            p = nn.Parameter(np.zeros(shape))
            p.grad = grads[s].copy()
            per_seed[s].append(p)
    norms = nn.clip_grad_norm_stacked(stacked, max_norm=2.0)
    for s in range(seeds):
        norm = nn.clip_grad_norm(per_seed[s], max_norm=2.0)
        assert norms[s] == norm
        for sp, p in zip(stacked, per_seed[s]):
            assert np.array_equal(sp.grad[s], p.grad)


@pytest.mark.parametrize("name", ["sgd", "rmsprop", "adam"])
def test_stacked_optimizers_match_per_seed(name):
    rng = np.random.default_rng(2)
    seeds, shape = 3, (9, 11)
    data = rng.standard_normal((seeds,) + shape)
    stacked = nn.Parameter(np.zeros(0))
    stacked.data = data.copy()
    singles = [nn.Parameter(np.zeros(0)) for _ in range(seeds)]
    for s, p in enumerate(singles):
        p.data = data[s].copy()
    classes = {"sgd": (nn.StackedSGD, nn.SGD, {"momentum": 0.9,
                                               "weight_decay": 1e-3}),
               "rmsprop": (nn.StackedRMSProp, nn.RMSProp, {}),
               "adam": (nn.StackedAdam, nn.Adam, {})}
    stacked_cls, serial_cls, kwargs = classes[name]
    stacked_opt = stacked_cls([stacked], lr=1e-2, **kwargs)
    serial_opts = [serial_cls([p], lr=1e-2, **kwargs) for p in singles]
    for _ in range(5):
        grads = rng.standard_normal((seeds,) + shape)
        stacked.grad = grads.copy()
        stacked_opt.step()
        for s, (p, opt) in enumerate(zip(singles, serial_opts)):
            p.grad = grads[s].copy()
            opt.step()
    for s, p in enumerate(singles):
        assert np.array_equal(stacked.data[s], p.data)


def test_optimizer_param_groups_use_group_learning_rates():
    a = nn.Parameter(np.ones(4))
    b = nn.Parameter(np.ones(4))
    optimizer = nn.SGD([{"params": [a], "lr": 0.1},
                        {"params": [b], "lr": 0.01}])
    a.grad = np.ones(4)
    b.grad = np.ones(4)
    optimizer.step()
    assert np.allclose(a.data, 1.0 - 0.1)
    assert np.allclose(b.data, 1.0 - 0.01)
    with pytest.raises(ValueError):
        nn.SGD([{"params": [a], "lr": -1.0}])


def test_original_states_batched_matches_serial(env_setup):
    setup = env_setup
    sessions = [StreamingSession(setup.video, trace, qoe=setup.qoe)
                for trace in list(setup.train_traces)[:3]]
    rng = np.random.default_rng(3)
    for session in sessions:
        for _ in range(4):
            session.step(int(rng.integers(setup.video.num_bitrates)))
    state_fn = StateFunction.original()
    expected = np.stack([state_fn(session.observe())
                         for session in sessions])
    out = np.empty_like(expected)
    histories = [session.history_arrays for session in sessions]
    simulator = sessions[0].simulator
    original_states_batched(
        np.stack([h[0] for h in histories]),
        np.stack([h[1] for h in histories]),
        np.stack([h[2] for h in histories]),
        np.stack([h[3] for h in histories]),
        setup.video.next_chunk_sizes(simulator.next_chunk_index),
        simulator.remaining_chunks, setup.video.num_chunks,
        np.asarray(setup.video.bitrates_kbps, dtype=np.float64), out=out)
    assert np.array_equal(out, expected)


def test_seed_stack_parameters_alias_network_weights(env_setup):
    setup = env_setup
    agents = _agents(setup, [0, 1])
    stack = PensieveSeedStack([agent.network for agent in agents])
    for index, agent in enumerate(agents):
        for p, sp in zip(agent.network.parameters(), stack.parameters()):
            assert p.data.base is sp.data
            assert np.shares_memory(p.data, sp.data[index])


# --------------------------------------------------------------------------- #
# Critic learning rate (the silent-hyperparameter bugfix)
# --------------------------------------------------------------------------- #
def test_critic_lr_steps_critic_head_at_its_own_rate(env_setup):
    setup = env_setup
    config = A2CConfig(actor_lr=1e-2, critic_lr=1e-4, optimizer="sgd",
                       max_grad_norm=1e9, entropy_anneal_epochs=1)
    agent = instantiate_agent(None, None, setup.video, setup.train_traces,
                              seed=0)
    trainer = A2CTrainer(agent, setup.video, setup.train_traces,
                         qoe=setup.qoe, config=config, seed=0)
    network = agent.network
    critic_before = network.critic_out.weight.data.copy()
    actor_before = network.actor_out.weight.data.copy()
    trainer.train_epoch()
    critic_grad_step = critic_before - network.critic_out.weight.data
    actor_grad_step = actor_before - network.actor_out.weight.data
    critic_grad = network.critic_out.weight.grad
    actor_grad = network.actor_out.weight.grad
    assert np.allclose(critic_grad_step, config.critic_lr * critic_grad,
                       atol=1e-12)
    assert np.allclose(actor_grad_step, config.actor_lr * actor_grad,
                       atol=1e-12)
    # The critic head visibly moves slower than it would at actor_lr.
    assert np.max(np.abs(critic_grad_step)) < np.max(np.abs(
        config.actor_lr * critic_grad))


def test_critic_head_parameters_cover_both_architectures(env_setup):
    setup = env_setup
    pensieve = _agents(setup, [0])[0].network
    critic = pensieve.critic_head_parameters()
    assert set(map(id, critic)) == {
        id(p) for p in (pensieve.critic_hidden.parameters()
                        + pensieve.critic_out.parameters())}
    generic = GenericActorCritic((6, 8), 4, hidden_sizes=(8,))
    ids = {id(p) for p in generic.critic_head_parameters()}
    assert {id(p) for p in generic.critic_out.parameters()} <= ids
    shared = GenericActorCritic((6, 8), 4, hidden_sizes=(8,),
                                share_trunk=True)
    assert ({id(p) for p in shared.critic_head_parameters()}
            == {id(p) for p in shared.critic_out.parameters()})
