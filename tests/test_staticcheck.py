"""Tests for the static design auditor and the repo contract linters.

Three layers of guarantees:

* property tests over the design-space grammar — healthy renders audit
  clean, defective renders are rejected with the expected rule family;
* lowerability cross-checks — the auditor's static verdicts must agree
  with what :func:`repro.nn.compile.plan_for` actually does;
* sandbox-hardening regressions — the ``().__class__`` escape family is
  rejected statically, the runtime getattr/setattr guards close the
  dynamic route, and ``import random`` in generated code is seeded.
"""

import numpy as np
import pytest

from repro.analysis.staticcheck import (
    LOWERABLE_ENCODERS,
    audit_design,
    lint_repo,
    predict_lowerability,
    rejection_bucket,
    run_selfcheck_corpus,
)
from repro.analysis.staticcheck.auditor import EXPECTED_DEFECT_RULES, DesignAuditor
from repro.core import telemetry
from repro.core.codegen import (
    CodeBlockError,
    compile_code_block,
    load_network_builder,
)
from repro.core.design import Design
from repro.llm.design_space import (
    NETWORK_ENCODERS,
    STATE_EXTRA_FEATURES,
    NetworkDesignSpace,
    NetworkDesignSpec,
    StateDesignSpace,
    StateDesignSpec,
)
from repro.nn.compile import lowerable_activation_names, plan_for

import ast


STATE_SPACE = StateDesignSpace()
NETWORK_SPACE = NetworkDesignSpace()

#: A grid of healthy state specs covering every family axis of the grammar:
#: all four normalization styles, dropped rows, and every extra feature.
HEALTHY_STATE_SPECS = (
    [StateDesignSpec(normalization=norm)
     for norm in ("unit", "signed", "aggressive", "mild")]
    + [StateDesignSpec(include_download_time=False),
       StateDesignSpec(include_next_sizes=False),
       StateDesignSpec(include_download_time=False, include_next_sizes=False)]
    + [StateDesignSpec(extra_features=(feature,))
       for feature in STATE_EXTRA_FEATURES]
    + [StateDesignSpec(normalization="aggressive",
                       extra_features=STATE_EXTRA_FEATURES[:3]),
       StateDesignSpec(normalization="signed",
                       extra_features=STATE_EXTRA_FEATURES[3:]),
       StateDesignSpec(normalization="mild", include_download_time=False),
       StateDesignSpec(normalization="aggressive", include_next_sizes=False),
       StateDesignSpec(normalization="signed", include_download_time=False,
                       include_next_sizes=False)]
)

#: Healthy network specs: every encoder family times a spread of lowerable
#: activations.
HEALTHY_NETWORK_SPECS = [
    NetworkDesignSpec(encoder=encoder, activation=activation, hidden_size=hidden)
    for encoder in NETWORK_ENCODERS
    for activation, hidden in (("relu", 64), ("leaky_relu", 32),
                               ("elu", 48), ("tanh", 16))
]


class TestHealthyDesignsAuditClean:
    def test_state_grid_covers_twenty_samples(self):
        assert len(HEALTHY_STATE_SPECS) >= 20

    def test_network_grid_covers_twenty_samples(self):
        assert len(HEALTHY_NETWORK_SPECS) >= 20

    @pytest.mark.parametrize("spec", HEALTHY_STATE_SPECS,
                             ids=lambda s: ",".join(s.tags))
    def test_healthy_state_designs_pass(self, spec):
        report = audit_design(STATE_SPACE.render(spec), "state")
        assert report.findings == [], report.summary()
        assert report.passed

    @pytest.mark.parametrize("spec", HEALTHY_NETWORK_SPECS,
                             ids=lambda s: ",".join(s.tags))
    def test_healthy_network_designs_pass(self, spec):
        report = audit_design(NETWORK_SPACE.render(spec), "network")
        assert report.findings == [], report.summary()
        assert report.lowerability is not None

    def test_random_healthy_samples_pass(self, rng):
        for kind, space in (("state", STATE_SPACE), ("network", NETWORK_SPACE)):
            for _ in range(25):
                sample = space.sample(rng)
                report = audit_design(sample.code, kind)
                assert report.findings == [], (sample.tags, report.summary())


class TestDefectsAreRejected:
    @pytest.mark.parametrize(("kind", "defect", "expected_rule"),
                             [(k, d, r) for (k, d), r in
                              sorted(EXPECTED_DEFECT_RULES.items())])
    def test_defect_flagged_with_expected_rule(self, rng, kind, defect,
                                               expected_rule):
        space = STATE_SPACE if kind == "state" else NETWORK_SPACE
        for _ in range(5):
            sample = space.sample(rng, defect=defect)
            report = audit_design(sample.code, kind)
            assert not report.passed, (defect, sample.code)
            assert report.has_rule(expected_rule), report.rule_ids()

    def test_selfcheck_corpus_is_green(self):
        ok, messages = run_selfcheck_corpus()
        assert ok, "\n".join(messages)


STATE_STUB = ("def state_func(bitrate_kbps_history, throughput_mbps_history,\n"
              "               download_time_s_history, buffer_size_s_history,\n"
              "               next_chunk_sizes_bytes, remaining_chunk_count,\n"
              "               total_chunk_count, bitrate_ladder_kbps):\n")


def _state_code(body: str) -> str:
    indented = "".join(f"    {line}\n" for line in body.splitlines())
    return "import numpy as np\n\n" + STATE_STUB + indented


class TestHandWrittenExemplars:
    """The auditor must catch escapes the design space never generates."""

    @pytest.mark.parametrize("body", [
        "return ().__class__.__mro__[1].__subclasses__()",
        "return (lambda: 0).__globals__",
        "x = throughput_mbps_history\nreturn x.__array_interface__",
    ])
    def test_dunder_attribute_escapes(self, body):
        report = audit_design(_state_code(body), "state")
        assert report.has_rule("sandbox.dunder-attribute")
        assert not report.passed

    def test_getattr_with_dunder_literal(self):
        report = audit_design(
            _state_code("return getattr((), '__class__')"), "state")
        assert report.has_rule("sandbox.dunder-attribute")

    def test_getattr_with_computed_name(self):
        report = audit_design(
            _state_code("name = '__cla' + 'ss__'\nreturn getattr((), name)"),
            "state")
        assert report.has_rule("sandbox.dynamic-attribute")

    @pytest.mark.parametrize("body,rule", [
        ("import os\nreturn np.zeros(3)", "sandbox.disallowed-import"),
        ("return eval('1+1') * np.ones(3)", "sandbox.denied-builtin"),
        ("global total_chunk_count\nreturn np.zeros(3)",
         "sandbox.global-state"),
        ("return undefined_helper(buffer_size_s_history)",
         "sandbox.undefined-name"),
    ])
    def test_sandbox_rules(self, body, rule):
        report = audit_design(_state_code(body), "state")
        assert report.has_rule(rule), report.rule_ids()

    @pytest.mark.parametrize("body,rule", [
        ("return np.random.rand(6, 8)", "determinism.unseeded-numpy-random"),
        ("np.random.seed(0)\nreturn np.zeros(3)", "determinism.global-seed"),
    ])
    def test_determinism_rules(self, body, rule):
        report = audit_design(_state_code(body), "state")
        assert report.has_rule(rule), report.rule_ids()
        assert not report.passed

    def test_unbounded_loop(self):
        report = audit_design(
            _state_code("while True:\n    pass\nreturn np.zeros(3)"), "state")
        assert report.has_rule("resource.unbounded-loop")

    def test_input_mutation(self):
        report = audit_design(
            _state_code("buffer_size_s_history[0] = 0.0\nreturn np.zeros(3)"),
            "state")
        assert report.has_rule("purity.input-mutation")

    def test_nonfinite_literal(self):
        report = audit_design(
            _state_code("return np.full(3, float('nan'))"), "state")
        assert report.has_rule("numeric.non-finite")

    def test_clean_handwritten_design_passes(self):
        body = ("state = np.zeros((2, 8))\n"
                "state[0] = throughput_mbps_history / 8.0\n"
                "state[1] = buffer_size_s_history / 10.0\n"
                "return state")
        report = audit_design(_state_code(body), "state")
        assert report.findings == [], report.summary()


class TestRejectionBuckets:
    def test_normalization_rules_fold_into_normalization(self):
        assert rejection_bucket("normalization.raw-bitrate") == "normalization"
        assert rejection_bucket("normalization.raw-sizes") == "normalization"

    @pytest.mark.parametrize("rule", [
        "syntax.error", "sandbox.dunder-attribute", "contract.state-rank",
        "numeric.non-finite", "determinism.global-seed",
    ])
    def test_everything_else_folds_into_compilation(self, rule):
        assert rejection_bucket(rule) == "compilation"


class TestLowerabilityAgreesWithCompiler:
    """Static verdicts must match what plan_for actually decides."""

    def _verdict_and_network(self, code):
        prediction = predict_lowerability(ast.parse(code))
        builder = load_network_builder(code)
        network = builder((6, 8), 6, rng=np.random.default_rng(0))
        return prediction, network

    @pytest.mark.parametrize("encoder", LOWERABLE_ENCODERS)
    def test_generic_encoders_compile(self, encoder):
        code = NETWORK_SPACE.render(NetworkDesignSpec(encoder=encoder,
                                                      hidden_size=24))
        prediction, network = self._verdict_and_network(code)
        assert prediction.verdict == "compiled", prediction
        assert plan_for(network) is not None

    def test_pensieve_network_is_hand_fused(self):
        code = NETWORK_SPACE.render(NetworkDesignSpec(encoder="pensieve_conv"))
        prediction, network = self._verdict_and_network(code)
        assert prediction.verdict == "hand_fused"
        # The fused-plan compiler skips it; the dedicated Pensieve engine
        # (folded conv weights) takes over instead.
        assert plan_for(network) is None

    def test_unlowerable_activation_falls_back(self):
        code = ("def build_network(state_shape, num_actions, rng=None):\n"
                "    return nn_library.GenericActorCritic(\n"
                "        state_shape, num_actions, hidden_sizes=(16,),\n"
                "        activation='softmax', encoder='flatten', rng=rng)\n")
        prediction, network = self._verdict_and_network(code)
        assert prediction.verdict == "graph_fallback"
        assert plan_for(network) is None

    def test_non_literal_configuration_is_unknown(self):
        code = ("def build_network(state_shape, num_actions, rng=None):\n"
                "    act = 'relu' if num_actions > 4 else 'tanh'\n"
                "    return nn_library.GenericActorCritic(\n"
                "        state_shape, num_actions, hidden_sizes=(16,),\n"
                "        activation=act, rng=rng)\n")
        prediction = predict_lowerability(ast.parse(code))
        assert prediction.verdict == "unknown"

    def test_lowerable_encoder_list_matches_constructor(self):
        from repro.abr.networks import GenericActorCritic
        for encoder in LOWERABLE_ENCODERS:
            network = GenericActorCritic((6, 8), 6, hidden_sizes=(8,),
                                         encoder=encoder,
                                         rng=np.random.default_rng(0))
            assert plan_for(network) is not None, encoder

    def test_design_space_activations_are_lowerable(self):
        # Every activation the synthetic grammar emits must stay inside the
        # compiler's vocabulary, or the "compiled" verdict would lie.
        lowerable = lowerable_activation_names()
        for spec in HEALTHY_NETWORK_SPECS:
            assert spec.activation in lowerable


class TestDesignAuditorStage:
    def test_check_returns_report(self):
        auditor = DesignAuditor()
        design = Design(kind="state", code=STATE_SPACE.render(StateDesignSpec()))
        passed, report = auditor.check(design)
        assert passed and report.passed

    def test_reject_on_warnings_toggle(self):
        # A GeneratorExp over itertools.count draws a WARNING, not an ERROR.
        code = _state_code("import itertools\n"
                           "gen = (i for i in itertools.count())\n"
                           "return np.zeros(3)")
        report = audit_design(code, "state")
        assert report.passed and report.warnings
        strict = DesignAuditor(reject_on_warnings=True)
        design = Design(kind="state", code=code)
        passed, _ = strict.check(design)
        assert not passed

    def test_telemetry_counters_emitted(self):
        telemetry.disable()
        sink = telemetry.enable()
        try:
            auditor = DesignAuditor()
            auditor.audit(STATE_SPACE.render(StateDesignSpec()), "state")
            auditor.audit(_state_code("return np.random.rand(3)"), "state")
            names = [event.name for event in sink.events]
        finally:
            telemetry.disable()
        assert "audit.pass" in names
        assert "audit.reject" in names
        assert "audit.rule.determinism.unseeded-numpy-random" in names


class TestContractLinter:
    def test_repo_is_clean(self):
        findings = lint_repo()
        errors = [f for f in findings if f.severity == "error"]
        assert errors == [], "\n".join(f.render() for f in errors)

    def test_violations_are_detected(self, tmp_path):
        # A synthetic source tree violating the RNG and picklability
        # contracts; the linter must flag both.
        bad = tmp_path / "repro"
        (bad / "core").mkdir(parents=True)
        (bad / "core" / "busted.py").write_text(
            "import numpy as np\n"
            "from .parallel import parallel_map\n\n\n"
            "def draw():\n"
            "    return np.random.rand(4)\n\n\n"
            "def fan_out(items):\n"
            "    def job(item):\n"
            "        return item + 1\n"
            "    np.random.seed(0)\n"
            "    parallel_map(job, items)\n"
            "    parallel_map(lambda item: item, items)\n")
        findings = lint_repo(str(bad))
        rules = {f.rule for f in findings}
        assert "repo.rng-discipline" in rules
        assert "repo.picklability" in rules
        rng_messages = [f.message for f in findings
                        if f.rule == "repo.rng-discipline"]
        assert any("np.random.rand" in m for m in rng_messages)
        assert any("np.random.seed" in m for m in rng_messages)

    def test_fault_coverage_all_declared_sites_are_tested(self):
        # Every site in FAULT_SITES must be named by at least one test; a
        # new injection site without a firing test is a lint error.
        from repro.analysis.staticcheck import contracts
        assert contracts._check_fault_coverage(
            contracts._repo_source_root()) == []

    def test_fault_coverage_flags_untested_site(self):
        from repro.analysis.staticcheck import contracts
        # Built at runtime so this very file does not "cover" the site.
        site = "rpc." + "never_tested"
        findings = contracts._check_fault_coverage(
            contracts._repo_source_root(), sites=frozenset({site}))
        assert len(findings) == 1
        assert findings[0].rule == "repo.fault-coverage"
        assert findings[0].severity == "error"
        assert site in findings[0].message


class TestSandboxHardening:
    """Runtime regressions for the codegen escape fixes."""

    def test_plain_dunder_chain_rejected_statically(self):
        # `().__class__` uses attribute syntax, which only the auditor can
        # stop — this is the canonical escape the audit stage exists for.
        report = audit_design(
            _state_code("return ().__class__.__mro__[1].__subclasses__()"),
            "state")
        assert not report.passed

    def test_runtime_getattr_dunder_blocked(self):
        fn = compile_code_block(
            "def probe():\n    return getattr((), '__cla' + 'ss__')\n",
            "probe")
        with pytest.raises(CodeBlockError, match="underscore-prefixed"):
            fn()

    def test_runtime_setattr_and_hasattr_blocked(self):
        fn = compile_code_block(
            "def probe(obj):\n"
            "    if hasattr(obj, '_' + 'secret'):\n"
            "        setattr(obj, '_' + 'secret', 1)\n",
            "probe")
        with pytest.raises(CodeBlockError):
            fn(object())

    def test_runtime_getattr_non_string_blocked(self):
        fn = compile_code_block(
            "def probe():\n    return getattr((), 123)\n", "probe")
        with pytest.raises(CodeBlockError, match="non-string"):
            fn()

    def test_legitimate_getattr_still_works(self):
        fn = compile_code_block(
            "import numpy as np\n"
            "def probe():\n"
            "    return getattr(np, 'sum')(np.ones(4))\n", "probe")
        assert fn() == 4.0

    def test_generated_random_is_seeded_and_reproducible(self):
        code = ("import random\n"
                "def draw():\n"
                "    return [random.random() for _ in range(5)]\n")
        first = compile_code_block(code, "draw")()
        second = compile_code_block(code, "draw")()
        assert first == second

    def test_generated_random_seed_and_random_class_work(self):
        code = ("import random\n"
                "def draw():\n"
                "    random.seed(42)\n"
                "    explicit = random.Random(7).random()\n"
                "    return explicit, random.random()\n")
        assert compile_code_block(code, "draw")() == \
            compile_code_block(code, "draw")()

    def test_generated_random_private_access_blocked(self):
        fn = compile_code_block(
            "import random\n"
            "def probe():\n    return random._instance\n", "probe")
        with pytest.raises(CodeBlockError):
            fn()
