"""Fault-tolerance tests: injection harness, recovery matrix, store safety.

The PR's hard guarantees:

* a campaign with injected worker crashes, job exceptions, timeouts, torn
  store writes and lease contention completes and is **bit-identical**
  (scores and store records) to the fault-free serial run;
* a job that keeps failing is quarantined — the batch completes with
  partial results and a failure summary instead of a traceback;
* two processes sharing one store execute each (context, design, seed)
  exactly once, coordinated by lease files and compare-and-swap puts;
* SIGINT mid-campaign drains in-flight work and persists completed
  results before raising (the documented resume path holds under
  interrupt);
* corrupted store records are quarantined to ``*.corrupt`` and counted,
  never silently retrained over.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import pickle
import signal
import time

import pytest

from repro.analysis import ExperimentScale
from repro.analysis.experiments import build_environment
from repro.cli import build_parser, main
from repro.core import (
    CampaignScheduler,
    Design,
    DesignTrainer,
    EvaluationJob,
    FaultPlan,
    FaultRule,
    InjectedFault,
    ParallelConfig,
    ResultStore,
    TaskOutcome,
    inject,
    run_resilient,
)
from repro.core import faults
from repro.core.evaluation import TrainingRun
from repro.llm import StateDesignSpace, StateDesignSpec

TINY = ExperimentScale(train_epochs=6, checkpoint_interval=3,
                       last_k_checkpoints=2, num_seeds=2,
                       dataset_scale=0.02, num_chunks=6)

GOOD_STATE = StateDesignSpace().render(
    StateDesignSpec(extra_features=("buffer_diff",)))


def _trainer(environment: str = "fcc",
             scale: ExperimentScale = TINY) -> DesignTrainer:
    setup = build_environment(environment, scale)
    return DesignTrainer(setup.video, setup.train_traces, setup.test_traces,
                         config=scale.evaluation_config(), qoe=setup.qoe)


def _campaign_jobs(trainer: DesignTrainer, design: Design):
    return [
        EvaluationJob(trainer=trainer, state_design=None, network_design=None,
                      seeds=(0, 1), environment="fcc"),
        EvaluationJob(trainer=trainer, state_design=design,
                      network_design=None, seeds=(0, 1), environment="fcc"),
    ]


def _store_snapshot(root: str):
    """Map of relative record path -> parsed record, for content equality."""
    snapshot = {}
    for dirpath, _, files in os.walk(root):
        for name in files:
            path = os.path.join(dirpath, name)
            rel = os.path.relpath(path, root)
            assert name.endswith(".json"), f"unexpected residue file {rel}"
            with open(path, "r", encoding="utf-8") as handle:
                snapshot[rel] = json.load(handle)
    return snapshot


def _sample_run(seed: int = 0) -> TrainingRun:
    return TrainingRun(seed=seed, reward_history=[0.1, 0.2],
                       checkpoint_epochs=[3, 6],
                       checkpoint_scores=[0.5, 0.6],
                       early_stopped=False, last_k_checkpoints=2)


# --------------------------------------------------------------------------- #
# FaultPlan semantics
# --------------------------------------------------------------------------- #
class TestFaultPlan:
    def test_unknown_site_rejected(self):
        with pytest.raises(ValueError):
            FaultRule(site="job.meteor")

    def test_times_bounds_occurrences(self):
        plan = FaultPlan(rules=(FaultRule("job.exception", times=2),))
        assert plan.should_fire("job.exception", "any", 0) is not None
        assert plan.should_fire("job.exception", "any", 1) is not None
        assert plan.should_fire("job.exception", "any", 2) is None

    def test_negative_times_fires_forever(self):
        plan = FaultPlan(rules=(FaultRule("job.exception", times=-1),))
        assert plan.should_fire("job.exception", "any", 99) is not None

    def test_match_substring(self):
        plan = FaultPlan(rules=(FaultRule("job.exception", match="fcc|"),))
        assert plan.should_fire("job.exception", "fcc|original", 0)
        assert plan.should_fire("job.exception", "starlink|x", 0) is None

    def test_probability_is_deterministic(self):
        plan = FaultPlan(rules=(FaultRule("job.exception",
                                          probability=0.5),), seed=3)
        draws = [plan.should_fire("job.exception", f"key{i}", 0) is not None
                 for i in range(64)]
        again = [plan.should_fire("job.exception", f"key{i}", 0) is not None
                 for i in range(64)]
        assert draws == again
        assert any(draws) and not all(draws)
        other_seed = FaultPlan(rules=(FaultRule("job.exception",
                                                probability=0.5),), seed=4)
        assert draws != [other_seed.should_fire("job.exception", f"key{i}", 0)
                         is not None for i in range(64)]

    def test_from_spec_round_trip(self):
        plan = FaultPlan.from_spec(
            "job.exception:*:2,store.torn_write::1,"
            "job.timeout:fcc:1:2.5,seed=7")
        assert plan.seed == 7
        assert len(plan.rules) == 3
        assert plan.rules[0] == FaultRule("job.exception", "*", 2)
        assert plan.rules[2].delay_s == 2.5
        with pytest.raises(ValueError):
            FaultPlan.from_spec("job.exception:*:1:0.5:extra")

    def test_plan_pickles(self):
        plan = FaultPlan.from_spec("job.crash:*:1,seed=5")
        clone = pickle.loads(pickle.dumps(plan))
        assert clone == plan

    def test_inject_scopes_plan(self):
        plan = FaultPlan(rules=(FaultRule("job.exception"),))
        assert faults.get_plan() is None
        with inject(plan):
            assert faults.get_plan() is plan
        assert faults.get_plan() is None

    def test_perturb_job_raises_injected_fault(self):
        plan = FaultPlan(rules=(FaultRule("job.exception", times=1),))
        with inject(plan):
            with pytest.raises(InjectedFault):
                faults.perturb_job("some-key", 0)
            faults.perturb_job("some-key", 1)  # retry attempt passes


# --------------------------------------------------------------------------- #
# run_resilient: retry, quarantine, interruption, pool respawn
# --------------------------------------------------------------------------- #
def _flaky(item, attempt):
    if attempt < item:
        raise ValueError(f"flaking on attempt {attempt}")
    return item * 10


def _crash_once(item, attempt):
    if item == 1 and attempt == 0:
        if faults.in_worker_process():
            os._exit(3)  # worker death, not an exception
        raise RuntimeError("crash surrogate (serial fallback)")
    return item * 10


class TestRunResilient:
    def test_serial_retries_then_succeeds(self):
        config = ParallelConfig(max_workers=1, max_retries=2,
                                backoff_base_s=0.0)
        outcomes = run_resilient(_flaky, [0, 1, 2], config)
        assert [o.value for o in outcomes] == [0, 10, 20]
        assert [o.attempts for o in outcomes] == [1, 2, 3]
        assert all(o.ok for o in outcomes)

    def test_serial_quarantines_past_budget(self):
        config = ParallelConfig(max_workers=1, max_retries=1,
                                backoff_base_s=0.0)
        outcomes = run_resilient(_flaky, [0, 3], config)
        assert outcomes[0].ok
        assert outcomes[1].status == "quarantined"
        assert outcomes[1].attempts == 2
        assert "ValueError" in outcomes[1].error

    def test_serial_should_stop_marks_interrupted(self):
        calls = []

        def fn(item, attempt):
            calls.append(item)
            return item

        config = ParallelConfig(max_workers=1)
        outcomes = run_resilient(fn, [0, 1, 2], config,
                                 should_stop=lambda: len(calls) >= 1)
        assert outcomes[0].ok
        assert {o.status for o in outcomes[1:]} == {"interrupted"}

    def test_pool_retries_and_preserves_order(self):
        config = ParallelConfig(max_workers=2, max_retries=2,
                                backoff_base_s=0.0)
        outcomes = run_resilient(_flaky, [0, 1, 2], config)
        assert [o.value for o in outcomes] == [0, 10, 20]
        assert all(o.ok for o in outcomes)
        assert outcomes[2].attempts == 3

    def test_pool_respawns_after_worker_death(self):
        config = ParallelConfig(max_workers=2, max_retries=2,
                                backoff_base_s=0.0)
        outcomes = run_resilient(_crash_once, [0, 1, 2], config)
        assert [o.value for o in outcomes] == [0, 10, 20]
        assert all(o.ok for o in outcomes)
        assert outcomes[1].attempts >= 2

    def test_pool_quarantines_persistent_crasher(self):
        def always(item, attempt):  # serial path: not picklable anyway
            raise RuntimeError("never works")

        config = ParallelConfig(max_workers=1, max_retries=1,
                                backoff_base_s=0.0)
        outcomes = run_resilient(always, [0], config)
        assert outcomes[0].status == "quarantined"


# --------------------------------------------------------------------------- #
# Store safety: CAS puts, torn writes, corruption quarantine, leases
# --------------------------------------------------------------------------- #
class TestStoreSafety:
    def test_put_is_create_if_absent(self, tmp_path):
        store = ResultStore(str(tmp_path))
        key = "ab" + "0" * 62
        assert store.put_run(key, _sample_run()) is True
        assert store.put_run(key, _sample_run(seed=9)) is False
        assert store.put_races == 1
        assert store.peek_run(key).seed == 0  # first writer won

    def test_torn_write_healed_by_retry(self, tmp_path):
        store = ResultStore(str(tmp_path))
        key = "cd" + "0" * 62
        plan = FaultPlan(rules=(FaultRule("store.torn_write", times=1),))
        with inject(plan):
            assert store.put_run(key, _sample_run()) is True
        assert store.torn_writes == 1
        assert store.peek_run(key).seed == 0
        assert store.statistics()["torn_writes"] == 1

    def test_undecodable_record_quarantined(self, tmp_path):
        store = ResultStore(str(tmp_path))
        key = "ef" + "0" * 62
        store.put_run(key, _sample_run())
        path = store._path(key)
        with open(path, "w", encoding="utf-8") as handle:
            handle.write('{"schema": 2, "run": {"seed"')  # truncated
        assert store.peek_run(key) is None
        assert not os.path.exists(path)
        assert os.path.exists(path + ".corrupt")
        assert store.statistics()["corrupt"] == 1
        assert key not in store  # counted as a miss by future lookups

    def test_malformed_payload_quarantined(self, tmp_path):
        store = ResultStore(str(tmp_path))
        key = "12" + "0" * 62
        store.put_run(key, _sample_run())
        path = store._path(key)
        with open(path, "w", encoding="utf-8") as handle:
            json.dump({"schema": 2, "meta": {}, "run": {"seed": 1}}, handle)
        assert store.peek_run(key) is None
        assert os.path.exists(path + ".corrupt")
        assert store.corrupt == 1

    def test_get_run_counts_quarantine_as_miss(self, tmp_path):
        store = ResultStore(str(tmp_path))
        key = "34" + "0" * 62
        store.put_run(key, _sample_run())
        with open(store._path(key), "w", encoding="utf-8") as handle:
            handle.write("not json")
        assert store.get_run(key) is None
        assert store.misses == 1

    def test_lease_claim_contend_release(self, tmp_path):
        store = ResultStore(str(tmp_path))
        key = "56" + "0" * 62
        lease = store.claim(key)
        assert lease is not None
        assert store.lease_owner(key) == store.owner_token
        assert store.claim(key) is None  # held by ourselves counts as live
        assert store.lease_contended == 1
        store.release(lease)
        assert store.lease_owner(key) is None
        assert store.claim(key) is not None

    def test_stale_lease_stolen(self, tmp_path):
        store = ResultStore(str(tmp_path), lease_timeout=5.0)
        key = "78" + "0" * 62
        plan = FaultPlan(rules=(FaultRule("store.lease_hold", times=1,
                                          delay_s=60.0),))
        with inject(plan):
            lease = store.claim(key)
        assert lease is not None  # planted lease was 60s old: stolen
        assert store.lease_stolen == 1
        assert store.lease_owner(key) == store.owner_token

    def test_fresh_foreign_lease_contends(self, tmp_path):
        store = ResultStore(str(tmp_path), lease_timeout=30.0)
        key = "9a" + "0" * 62
        plan = FaultPlan(rules=(FaultRule("store.lease_hold", times=1,
                                          delay_s=0.0),))
        with inject(plan):
            assert store.claim(key) is None
        assert store.lease_contended == 1

    def test_release_is_owner_checked(self, tmp_path):
        store = ResultStore(str(tmp_path))
        key = "bc" + "0" * 62
        lease = store.claim(key)
        # Simulate a steal: someone else rewrote the lease file.
        with open(lease.path, "w", encoding="utf-8") as handle:
            json.dump({"owner": "them@elsewhere", "ts": 0}, handle)
        store.release(lease)
        assert store.lease_released == 0
        assert store.lease_owner(key) == "them@elsewhere"

    def test_lease_epoch_fences_past_the_previous_holder(self, tmp_path):
        store = ResultStore(str(tmp_path), lease_timeout=5.0)
        key = "de" + "0" * 62
        lease = store.claim(key)
        assert lease.epoch == 1
        # A wedged foreign holder at epoch 3 whose heartbeat went silent.
        with open(lease.path, "w", encoding="utf-8") as handle:
            json.dump({"owner": "them@elsewhere", "ts": 0, "epoch": 3},
                      handle)
        then = time.time() - 120.0
        os.utime(lease.path, (then, then))
        stolen = store.claim(key)
        assert stolen is not None
        assert store.lease_stolen == 1
        assert stolen.epoch == 4  # strictly past the dead owner's token

    def test_fenced_put_dropped_after_lease_steal(self, tmp_path):
        store = ResultStore(str(tmp_path))
        key = "f1" + "0" * 62
        lease = store.claim(key)
        # Simulate a steal while this "worker" was away computing.
        with open(lease.path, "w", encoding="utf-8") as handle:
            json.dump({"owner": "them@elsewhere", "ts": time.time(),
                       "epoch": lease.epoch + 1}, handle)
        assert store.put_run(key, _sample_run(), lease=lease) is False
        assert store.fenced_puts == 1
        assert store.statistics()["fenced_puts"] == 1
        assert key not in store  # the zombie's record never landed
        # The takeover (no stale lease handle) still publishes normally.
        assert store.put_run(key, _sample_run()) is True
        assert store.puts == 1


# --------------------------------------------------------------------------- #
# The recovery matrix: fault × execution shape, bit-identical to fault-free
# --------------------------------------------------------------------------- #
def _fault_case(site: str, workers: int):
    """(plan, extra ParallelConfig kwargs, store lease_timeout) per case."""
    if site == "exception":
        return FaultPlan(rules=(FaultRule("job.exception", times=1),)), {}, 30.0
    if site == "crash":
        return FaultPlan(rules=(FaultRule("job.crash", times=1),)), {}, 30.0
    if site == "timeout":
        if workers > 1:
            return (FaultPlan(rules=(FaultRule("job.timeout", times=1,
                                               delay_s=4.0),)),
                    {"job_timeout": 1.0}, 30.0)
        # Serially a job cannot be preempted; the injected delay must not
        # change results.
        return (FaultPlan(rules=(FaultRule("job.timeout", times=1,
                                           delay_s=0.2),)), {}, 30.0)
    if site == "torn_write":
        return FaultPlan(rules=(FaultRule("store.torn_write", times=1),)), {}, 30.0
    if site == "lease_steal":
        return (FaultPlan(rules=(FaultRule("store.lease_hold", times=1,
                                           delay_s=120.0),)), {}, 30.0)
    if site == "lease_wait":
        # A fresh foreign lease: the scheduler defers, polls, then takes
        # the lease over once it goes stale (the holder never publishes).
        return (FaultPlan(rules=(FaultRule("store.lease_hold", times=1,
                                           delay_s=0.0),)), {}, 0.5)
    raise AssertionError(site)


class TestRecoveryMatrix:
    @pytest.fixture(scope="class")
    def reference(self, tmp_path_factory):
        """Fault-free serial campaign: scores plus full store contents."""
        trainer = _trainer()
        design = Design(kind="state", code=GOOD_STATE)
        root = str(tmp_path_factory.mktemp("reference-store"))
        scheduler = CampaignScheduler(ParallelConfig(max_workers=1),
                                      store=ResultStore(root))
        results = scheduler.run(_campaign_jobs(trainer, design))
        return {
            "trainer": trainer,
            "design": design,
            "scores": [result.score for result in results],
            "store": _store_snapshot(root),
        }

    @pytest.mark.parametrize("workers", [1, 2])
    @pytest.mark.parametrize("site", ["exception", "crash", "timeout",
                                      "torn_write", "lease_steal",
                                      "lease_wait"])
    def test_recovered_campaign_is_bit_identical(self, reference, tmp_path,
                                                 site, workers):
        plan, extra, lease_timeout = _fault_case(site, workers)
        store = ResultStore(str(tmp_path), lease_timeout=lease_timeout)
        config = ParallelConfig(max_workers=workers, max_retries=3,
                                backoff_base_s=0.01, **extra)
        scheduler = CampaignScheduler(config, store=store)
        jobs = _campaign_jobs(reference["trainer"], reference["design"])
        with inject(plan):
            results = scheduler.run(jobs)

        assert all(result.ok for result in results)
        assert scheduler.failures == []
        assert [r.score for r in results] == reference["scores"]
        # Store records — contents and layout — match the fault-free run.
        assert _store_snapshot(str(tmp_path)) == reference["store"]
        if site in ("exception", "crash"):
            assert all(result.attempts == 2 for result in results)
        if site == "torn_write":
            assert store.torn_writes > 0
        if site == "lease_steal":
            assert store.lease_stolen > 0
        if site == "lease_wait":
            assert store.lease_contended > 0
            assert store.lease_stolen > 0

    def test_persistent_failure_quarantines_design_job(self, reference,
                                                       tmp_path):
        store = ResultStore(str(tmp_path))
        scheduler = CampaignScheduler(
            ParallelConfig(max_workers=1, max_retries=1, backoff_base_s=0.0),
            store=store)
        jobs = _campaign_jobs(reference["trainer"], reference["design"])
        plan = FaultPlan(rules=(FaultRule("job.exception", match="state:",
                                          times=-1),))
        with inject(plan):
            results = scheduler.run(jobs)
        assert results[0].ok
        assert results[0].score == reference["scores"][0]
        assert results[1].status == "quarantined"
        assert results[1].score == float("-inf")
        assert results[1].attempts == 2
        assert "InjectedFault" in results[1].error
        assert scheduler.failures == [results[1]]
        summary = scheduler.failure_summary()
        assert summary is not None and "quarantined" in summary
        # Only the healthy job's records persisted; no leases left behind.
        snapshot = _store_snapshot(str(tmp_path))
        assert len(snapshot) == 2
        assert {rel: record for rel, record in reference["store"].items()
                if record["meta"]["state_design"] == "original"} == snapshot

    def test_sigint_drains_and_persists(self, reference, tmp_path):
        """An interrupt mid-campaign persists completed jobs, then raises."""
        store = ResultStore(str(tmp_path))
        scheduler = CampaignScheduler(ParallelConfig(max_workers=1),
                                      store=store)
        jobs = _campaign_jobs(reference["trainer"], reference["design"])
        # SIGINT is delivered during the first job (label "original"); the
        # job finishes and persists, the second job never starts.
        plan = FaultPlan(rules=(FaultRule("job.interrupt", match="original",
                                          times=1),))
        with inject(plan):
            with pytest.raises(KeyboardInterrupt):
                scheduler.run(jobs)
        snapshot = _store_snapshot(str(tmp_path))
        assert len(snapshot) == 2  # both seeds of the original job
        assert {rel: record for rel, record in reference["store"].items()
                if record["meta"]["state_design"] == "original"} == snapshot
        # A resumed campaign completes from the store, bit-identically.
        resumed = CampaignScheduler(ParallelConfig(max_workers=1),
                                    store=ResultStore(str(tmp_path)))
        results = resumed.run(_campaign_jobs(reference["trainer"],
                                             reference["design"]))
        assert [r.score for r in results] == reference["scores"]
        assert results[0].cached
        assert _store_snapshot(str(tmp_path)) == reference["store"]

    def test_request_shutdown_before_run_interrupts(self, reference):
        scheduler = CampaignScheduler(ParallelConfig(max_workers=1))
        jobs = _campaign_jobs(reference["trainer"], reference["design"])
        original_run = scheduler._run_batch

        def stop_then_run(batch, tel):
            scheduler.request_shutdown()
            return original_run(batch, tel)

        scheduler._run_batch = stop_then_run
        with pytest.raises(KeyboardInterrupt):
            scheduler.run(jobs)


# --------------------------------------------------------------------------- #
# Two processes, one store: each key executes exactly once
# --------------------------------------------------------------------------- #
def _shared_store_worker(root: str, out_path: str) -> None:
    trainer = _trainer()
    design = Design(kind="state", code=GOOD_STATE, design_id="shared-design")
    store = ResultStore(root, lease_timeout=120.0)
    scheduler = CampaignScheduler(ParallelConfig(max_workers=1), store=store)
    results = scheduler.run(_campaign_jobs(trainer, design))
    with open(out_path, "w", encoding="utf-8") as handle:
        json.dump({"scores": [r.score for r in results],
                   "stats": store.statistics()}, handle)


def _stalled_victim_worker(root: str) -> None:
    """Claim the campaign's leases, then wedge forever (until SIGKILLed)."""
    trainer = _trainer()
    design = Design(kind="state", code=GOOD_STATE, design_id="shared-design")
    store = ResultStore(root, lease_timeout=120.0)
    scheduler = CampaignScheduler(ParallelConfig(max_workers=1), store=store)
    plan = FaultPlan(rules=(FaultRule("job.timeout", times=-1,
                                      delay_s=600.0),))
    with inject(plan):
        scheduler.run(_campaign_jobs(trainer, design))


class TestSharedStoreCampaign:
    def test_two_processes_execute_each_key_exactly_once(self, tmp_path):
        root = str(tmp_path / "store")
        outs = [str(tmp_path / f"proc{i}.json") for i in range(2)]
        procs = [multiprocessing.Process(target=_shared_store_worker,
                                         args=(root, out)) for out in outs]
        for proc in procs:
            proc.start()
        for proc in procs:
            proc.join(timeout=300)
            assert proc.exitcode == 0
        reports = []
        for out in outs:
            with open(out, "r", encoding="utf-8") as handle:
                reports.append(json.load(handle))
        # Both campaigns converged on the same scores...
        assert reports[0]["scores"] == reports[1]["scores"]
        # ...and the 4 (context, design, seed) keys were each written by
        # exactly one process: puts across the fleet equal the record count.
        snapshot = _store_snapshot(root)
        assert len(snapshot) == 4
        total_puts = sum(report["stats"]["puts"] for report in reports)
        assert total_puts == 4
        assert sum(report["stats"]["put_races"] for report in reports) == 0
        # Work was actually shared: somebody hit records they didn't write
        # (unless the loser deferred on every job, in which case it shows
        # lease contention instead).
        total_hits = sum(report["stats"]["hits"] for report in reports)
        total_contended = sum(report["stats"]["lease_contended"]
                              for report in reports)
        assert total_hits > 0 or total_contended > 0

    def test_sigkilled_lease_holder_is_taken_over_exactly_once(self,
                                                               tmp_path):
        """A worker SIGKILLed mid-job leaves stale leases; a survivor steals
        them, re-executes, and ends up with exactly one record per key."""
        root = str(tmp_path / "store")
        victim = multiprocessing.Process(target=_stalled_victim_worker,
                                         args=(root,))
        victim.start()
        try:
            deadline = time.time() + 120.0
            claimed = []
            while time.time() < deadline and not claimed:
                for _, _, files in os.walk(root):
                    claimed.extend(name for name in files
                                   if name.endswith(".lease"))
                time.sleep(0.05)
            assert claimed, "victim never claimed a lease"
            os.kill(victim.pid, signal.SIGKILL)  # dies holding its leases
        finally:
            victim.join(timeout=30)
        assert victim.exitcode == -signal.SIGKILL

        trainer = _trainer()
        design = Design(kind="state", code=GOOD_STATE,
                        design_id="shared-design")
        reference = CampaignScheduler(ParallelConfig(max_workers=1)).run(
            _campaign_jobs(trainer, design))

        # The survivor first sees fresh-looking foreign leases (the victim
        # heartbeated until the kill), defers, then takes them over once
        # they cross the staleness deadline — and does all the work itself.
        store = ResultStore(root, lease_timeout=2.0)
        survivor = CampaignScheduler(ParallelConfig(max_workers=1),
                                     store=store)
        results = survivor.run(_campaign_jobs(trainer, design))
        assert all(result.ok for result in results)
        assert [r.score for r in results] == [r.score for r in reference]
        assert store.lease_stolen > 0
        assert store.puts == 4  # exactly once: every record is the survivor's
        assert store.fenced_puts == 0
        assert len(_store_snapshot(root)) == 4


# --------------------------------------------------------------------------- #
# CLI surface
# --------------------------------------------------------------------------- #
class TestFaultCli:
    def test_flags_parse(self):
        args = build_parser().parse_args(
            ["run", "--max-retries", "5", "--job-timeout", "30",
             "--faults", "job.exception:*:1,seed=3"])
        assert args.max_retries == 5
        assert args.job_timeout == 30.0
        assert args.faults == "job.exception:*:1,seed=3"

    def test_chaos_run_retries_and_succeeds(self, capsys):
        exit_code = main([
            "run", "--environment", "fcc", "--num-designs", "2",
            "--train-epochs", "6", "--checkpoint-interval", "3",
            "--num-seeds", "1", "--num-chunks", "6",
            "--dataset-scale", "0.02", "--no-early-stopping",
            "--max-retries", "3",
            "--faults", "job.exception:*:1"])
        assert exit_code == 0
        assert faults.get_plan() is None  # cleared after the run
        captured = capsys.readouterr().out
        assert "original score" in captured

    def test_quarantined_jobs_fail_the_run(self, capsys):
        exit_code = main([
            "run", "--environment", "fcc", "--num-designs", "2",
            "--train-epochs", "6", "--checkpoint-interval", "3",
            "--num-seeds", "1", "--num-chunks", "6",
            "--dataset-scale", "0.02", "--no-early-stopping",
            "--max-retries", "1",
            "--faults", "job.exception:state:-1"])
        assert exit_code == 1
        captured = capsys.readouterr()
        assert "quarantined" in captured.err
        assert "original score" in captured.out  # graceful degradation
