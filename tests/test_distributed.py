"""Distributed transport tests: protocol, work-stealing, failure recovery.

The PR's hard guarantees:

* a ``--backend remote`` campaign over worker subprocesses is
  **bit-identical** (scores and store records) to the serial run, and two
  workers finish a batch of sleep-bound jobs strictly faster than one;
* a worker lost mid-job — injected crash (``rpc.worker_crash``), dropped
  connection (``rpc.conn_drop``) or missed heartbeats
  (``rpc.heartbeat_loss``) — has its job requeued under the retry budget
  and the batch still completes bit-identically;
* a wedged worker's late RESULT carries a revoked assignment epoch and is
  fenced, never merged (exactly-once of the in-memory merge), mirroring
  the store-level lease fencing in ``tests/test_faults.py``;
* RESULT arrival order does not leak into results or telemetry: a run
  shuffled by ``rpc.result_delay`` produces the same submission-ordered
  event stream as the serial run (the PR 6 merge contract);
* an emptied worker pool degrades per configuration — finish locally, or
  raise :class:`NoWorkersError` with every store lease released so the
  campaign can resume — instead of hanging.
"""

from __future__ import annotations

import json
import os
import socket
import time
from dataclasses import dataclass
from typing import Optional

import pytest

from repro.analysis import ExperimentScale
from repro.analysis.experiments import build_environment
from repro.cli import build_parser, main
from repro.core import (
    CampaignScheduler,
    Design,
    DesignTrainer,
    EvaluationJob,
    FaultPlan,
    FaultRule,
    NoWorkersError,
    ParallelConfig,
    RemoteConfig,
    RemoteExecutor,
    ResultStore,
    inject,
    run_worker,
    telemetry,
)
from repro.core.distributed import PROTOCOL_VERSION
from repro.llm import StateDesignSpace, StateDesignSpec

TESTS_DIR = os.path.dirname(os.path.abspath(__file__))

TINY = ExperimentScale(train_epochs=6, checkpoint_interval=3,
                       last_k_checkpoints=2, num_seeds=2,
                       dataset_scale=0.02, num_chunks=6)

GOOD_STATE = StateDesignSpace().render(
    StateDesignSpec(extra_features=("buffer_diff",)))

#: Snappy supervision/heartbeat cadence so fault tests stay fast.
FAST = dict(heartbeat_interval_s=0.05, heartbeat_timeout_s=2.0,
            poll_interval_s=0.02, idle_retry_s=0.02)


def _trainer(environment: str = "fcc",
             scale: ExperimentScale = TINY) -> DesignTrainer:
    setup = build_environment(environment, scale)
    return DesignTrainer(setup.video, setup.train_traces, setup.test_traces,
                         config=scale.evaluation_config(), qoe=setup.qoe)


def _campaign_jobs(trainer: DesignTrainer, design: Design):
    return [
        EvaluationJob(trainer=trainer, state_design=None, network_design=None,
                      seeds=(0, 1), environment="fcc"),
        EvaluationJob(trainer=trainer, state_design=design,
                      network_design=None, seeds=(0, 1), environment="fcc"),
    ]


def _store_snapshot(root: str):
    snapshot = {}
    for dirpath, _, files in os.walk(root):
        for name in files:
            path = os.path.join(dirpath, name)
            rel = os.path.relpath(path, root)
            assert name.endswith(".json"), f"unexpected residue file {rel}"
            with open(path, "r", encoding="utf-8") as handle:
                snapshot[rel] = json.load(handle)
    return snapshot


# --------------------------------------------------------------------------- #
# Work items + functions executed inside worker subprocesses.  Must live at
# module scope: payloads are pickled by reference and the workers import
# this module via the ``extra_path`` hook of ``launch_workers``.
# --------------------------------------------------------------------------- #
@dataclass
class _Item:
    """A work item that can carry a fault plan to the remote worker."""

    value: int
    key: str = ""
    fails: int = 0
    fault_plan: Optional[FaultPlan] = None

    def fault_key(self) -> str:
        return self.key or f"value{self.value}"


def _times_ten(item, attempt):
    return item * 10


def _sleep_item(item, attempt):
    time.sleep(0.5)
    return item


def _item_value(item: _Item, attempt: int) -> int:
    if attempt < item.fails:
        raise ValueError(f"flaking on attempt {attempt}")
    return item.value * 10


def _fresh_executor(launch: int = 0, **overrides) -> RemoteExecutor:
    settings = dict(FAST)
    settings.update(overrides)
    executor = RemoteExecutor(RemoteConfig(**settings))
    if launch:
        executor.launch_workers(launch, extra_path=TESTS_DIR)
        assert executor.wait_for_workers(launch, timeout=60.0)
    return executor


# --------------------------------------------------------------------------- #
# Protocol handshake
# --------------------------------------------------------------------------- #
class TestProtocol:
    def test_version_mismatch_rejected(self):
        with _fresh_executor() as executor:
            with socket.create_connection(executor.address,
                                          timeout=10.0) as sock:
                rfile = sock.makefile("r", encoding="utf-8")
                wfile = sock.makefile("w", encoding="utf-8")
                wfile.write(json.dumps({"type": "HELLO", "protocol": 999,
                                        "worker": "zombie@future"}) + "\n")
                wfile.flush()
                reply = json.loads(rfile.readline())
            assert reply["type"] == "REJECT"
            assert "999" in reply["reason"]
            assert str(PROTOCOL_VERSION) in reply["reason"]
            assert executor.worker_count() == 0

    def test_welcome_carries_cadence(self):
        with _fresh_executor() as executor:
            with socket.create_connection(executor.address,
                                          timeout=10.0) as sock:
                rfile = sock.makefile("r", encoding="utf-8")
                wfile = sock.makefile("w", encoding="utf-8")
                wfile.write(json.dumps(
                    {"type": "HELLO", "protocol": PROTOCOL_VERSION,
                     "worker": "probe@test"}) + "\n")
                wfile.flush()
                reply = json.loads(rfile.readline())
                assert reply["type"] == "WELCOME"
                assert reply["heartbeat_s"] == \
                    executor.config.heartbeat_interval_s
                assert executor.wait_for_workers(1, timeout=10.0)

    def test_unreachable_coordinator_exit_code(self):
        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()  # nobody listens here now
        assert run_worker("127.0.0.1", port, connect_attempts=1,
                          connect_delay_s=0.01) == 1


# --------------------------------------------------------------------------- #
# Pull-based execution: ordering, retries, work-stealing speedup
# --------------------------------------------------------------------------- #
class TestRemoteExecution:
    def test_results_come_back_in_submission_order(self):
        with _fresh_executor(launch=2) as executor:
            outcomes = executor.run(_times_ten, list(range(6)),
                                    ParallelConfig(max_workers=2))
            assert [o.value for o in outcomes] == [0, 10, 20, 30, 40, 50]
            assert all(o.ok and o.attempts == 1 for o in outcomes)
            assert executor.last_stats["dispatched"] == 6
            assert executor.last_stats["fenced"] == 0
            assert executor.last_stats["fallback_local"] == 0
            assert sorted(executor.last_stats["result_order"]) == \
                list(range(6))

    def test_empty_batch_is_a_noop(self):
        with _fresh_executor() as executor:
            assert executor.run(_times_ten, []) == []
            assert executor.last_stats["dispatched"] == 0

    def test_remote_retry_then_quarantine(self):
        config = ParallelConfig(max_workers=2, max_retries=2,
                                backoff_base_s=0.01)
        items = [_Item(1), _Item(2, fails=2), _Item(3, fails=5)]
        with _fresh_executor(launch=1) as executor:
            outcomes = executor.run(_item_value, items, config)
        assert outcomes[0].ok and outcomes[0].attempts == 1
        assert outcomes[1].ok and outcomes[1].attempts == 3
        assert [o.value for o in outcomes[:2]] == [10, 20]
        assert outcomes[2].status == "quarantined"
        assert outcomes[2].attempts == 3
        assert "ValueError" in outcomes[2].error

    def test_two_workers_strictly_faster_than_one(self):
        """Work-stealing acceptance: pulled jobs split the sleep-bound batch."""
        items = list(range(4))  # 4 x 0.5s of sleeping

        def timed(workers: int) -> float:
            with _fresh_executor(launch=workers) as executor:
                start = time.monotonic()
                outcomes = executor.run(_sleep_item, items,
                                        ParallelConfig(max_workers=workers))
                elapsed = time.monotonic() - start
            assert [o.value for o in outcomes] == items
            return elapsed

        one = timed(1)
        two = timed(2)
        assert one >= 4 * 0.5  # sanity: the sleeps actually serialized
        assert two < one * 0.75, f"2 workers {two:.2f}s vs 1 worker {one:.2f}s"


# --------------------------------------------------------------------------- #
# Injected transport faults (executor level)
# --------------------------------------------------------------------------- #
class TestRpcFaults:
    def test_worker_crash_requeues_and_heals(self):
        plan = FaultPlan(rules=(FaultRule("rpc.worker_crash",
                                          match="victim", times=1),))
        items = [_Item(1), _Item(2, key="victim", fault_plan=plan), _Item(3)]
        config = ParallelConfig(max_workers=2, max_retries=3,
                                backoff_base_s=0.01)
        with _fresh_executor(launch=2) as executor:
            outcomes = executor.run(_item_value, items, config)
            assert [o.value for o in outcomes] == [10, 20, 30]
            assert all(o.ok for o in outcomes)
            assert outcomes[1].attempts == 2  # died once, re-ran clean
            assert executor.workers_lost >= 1
            assert executor.last_stats["requeued"] >= 1

    def test_conn_drop_reconnects_and_heals(self):
        plan = FaultPlan(rules=(FaultRule("rpc.conn_drop",
                                          match="flaky-link", times=1),))
        items = [_Item(1), _Item(2, key="flaky-link", fault_plan=plan)]
        config = ParallelConfig(max_workers=2, max_retries=3,
                                backoff_base_s=0.01)
        with _fresh_executor(launch=2) as executor:
            outcomes = executor.run(_item_value, items, config)
            assert [o.value for o in outcomes] == [10, 20]
            assert outcomes[1].attempts == 2
            assert executor.workers_lost >= 1
            # The dropped worker dialed back in with a fresh HELLO.
            assert executor.workers_connected >= 3
            assert executor.last_stats["requeued"] >= 1

    def test_heartbeat_loss_revokes_and_fences_stale_result(self):
        """The zombie path: silence past the deadline revokes the job; the
        wedged worker's eventual RESULT carries the old epoch and is fenced,
        so exactly one execution is merged."""
        plan = FaultPlan(rules=(FaultRule("rpc.heartbeat_loss",
                                          match="wedged", times=1,
                                          delay_s=2.0),))
        items = [_Item(7, key="wedged", fault_plan=plan)]
        config = ParallelConfig(max_workers=2, max_retries=3,
                                backoff_base_s=0.01)
        sink = telemetry.Telemetry()
        previous = telemetry.set_telemetry(sink)
        try:
            with _fresh_executor(launch=2, heartbeat_timeout_s=0.5) \
                    as executor:
                outcomes = executor.run(_item_value, items, config)
                assert outcomes[0].ok and outcomes[0].value == 70
                assert outcomes[0].attempts == 2  # timeout charged one
                assert executor.last_stats["heartbeat_timeouts"] >= 1
                assert executor.last_stats["requeued"] >= 1
                # The stale RESULT may land after the batch finished; wait
                # for the fence counter rather than racing it.
                deadline = time.monotonic() + 10.0
                while time.monotonic() < deadline:
                    fenced = sum(e.value for e in sink.events
                                 if e.name == "rpc.result_fenced")
                    if fenced >= 1:
                        break
                    time.sleep(0.05)
                assert fenced >= 1, "stale RESULT was never fenced"
        finally:
            telemetry.set_telemetry(previous)

    def test_result_delay_shuffles_arrival_not_results(self):
        plan = FaultPlan(rules=(FaultRule("rpc.result_delay",
                                          match="laggard", times=1,
                                          delay_s=1.0),))
        items = [_Item(1, key="laggard", fault_plan=plan),
                 _Item(2), _Item(3)]
        config = ParallelConfig(max_workers=2, max_retries=1,
                                backoff_base_s=0.01)
        with _fresh_executor(launch=2) as executor:
            outcomes = executor.run(_item_value, items, config)
            assert [o.value for o in outcomes] == [10, 20, 30]
            assert all(o.ok and o.attempts == 1 for o in outcomes)
            # Arrival order shuffled (delayed item last in), results not.
            assert executor.last_stats["result_order"][-1] == 0
            assert executor.last_stats["requeued"] == 0
            assert executor.last_stats["fenced"] == 0


# --------------------------------------------------------------------------- #
# Pool-empty degradation
# --------------------------------------------------------------------------- #
class TestDegradation:
    def test_no_workers_falls_back_to_local(self):
        with _fresh_executor(worker_deadline_s=0.3) as executor:
            outcomes = executor.run(_times_ten, [1, 2, 3],
                                    ParallelConfig(max_workers=1))
            assert [o.value for o in outcomes] == [10, 20, 30]
            assert all(o.ok for o in outcomes)
            assert executor.last_stats["fallback_local"] == 1
            assert executor.last_stats["dispatched"] == 0

    def test_no_workers_fail_mode_raises(self):
        with _fresh_executor(worker_deadline_s=0.3,
                             fallback="fail") as executor:
            with pytest.raises(NoWorkersError, match="resume"):
                executor.run(_times_ten, [1, 2], ParallelConfig())

    def test_fallback_validated(self):
        with pytest.raises(ValueError):
            RemoteConfig(fallback="shrug")


# --------------------------------------------------------------------------- #
# Full campaigns over the remote backend: bit-identity + chaos + telemetry
# --------------------------------------------------------------------------- #
class TestRemoteCampaign:
    @pytest.fixture(scope="class")
    def reference(self, tmp_path_factory):
        """Fault-free serial campaign: scores plus full store contents."""
        trainer = _trainer()
        design = Design(kind="state", code=GOOD_STATE)
        root = str(tmp_path_factory.mktemp("reference-store"))
        scheduler = CampaignScheduler(ParallelConfig(max_workers=1),
                                      store=ResultStore(root))
        results = scheduler.run(_campaign_jobs(trainer, design))
        return {
            "trainer": trainer,
            "design": design,
            "scores": [result.score for result in results],
            "store": _store_snapshot(root),
        }

    def _remote_scheduler(self, executor, store=None, **parallel):
        parallel.setdefault("max_workers", 2)
        parallel.setdefault("max_retries", 3)
        parallel.setdefault("backoff_base_s", 0.01)
        return CampaignScheduler(ParallelConfig(**parallel), store=store,
                                 executor=executor)

    def test_remote_campaign_bit_identical_to_serial(self, reference,
                                                     tmp_path):
        store = ResultStore(str(tmp_path))
        with _fresh_executor(launch=2) as executor:
            scheduler = self._remote_scheduler(executor, store=store)
            results = scheduler.run(_campaign_jobs(reference["trainer"],
                                                   reference["design"]))
        assert all(result.ok for result in results)
        assert [r.score for r in results] == reference["scores"]
        assert _store_snapshot(str(tmp_path)) == reference["store"]
        assert store.puts == 4
        assert store.fenced_puts == 0
        assert executor.last_stats["fenced"] == 0

    def test_remote_campaign_heals_rpc_chaos_bit_identically(self, reference,
                                                             tmp_path):
        """Crash one worker, drop a connection, tear a store write — the
        campaign completes bit-identical with exactly-once persistence."""
        store = ResultStore(str(tmp_path))
        plan = FaultPlan(rules=(
            FaultRule("rpc.worker_crash", match="state:", times=1),
            FaultRule("rpc.conn_drop", match="original", times=1),
            FaultRule("store.torn_write", times=1),
        ))
        with _fresh_executor(launch=2) as executor:
            scheduler = self._remote_scheduler(executor, store=store)
            jobs = _campaign_jobs(reference["trainer"], reference["design"])
            with inject(plan):
                results = scheduler.run(jobs)
        assert all(result.ok for result in results)
        assert scheduler.failures == []
        assert [r.score for r in results] == reference["scores"]
        assert _store_snapshot(str(tmp_path)) == reference["store"]
        assert executor.workers_lost >= 2  # the crash and the drop
        assert executor.last_stats["requeued"] >= 2
        assert store.torn_writes > 0
        assert store.puts == 4
        assert store.fenced_puts == 0

    def test_result_delay_keeps_telemetry_merge_deterministic(self,
                                                              reference):
        """The PR 6 contract over the wire: shuffling RESULT arrival via
        ``rpc.result_delay`` leaves the merged event stream identical to the
        serial run, modulo transport/placement events."""
        jobs = _campaign_jobs(reference["trainer"], reference["design"])

        sink = telemetry.Telemetry()
        previous = telemetry.set_telemetry(sink)
        try:
            CampaignScheduler(ParallelConfig(max_workers=1)).run(jobs)
        finally:
            telemetry.set_telemetry(previous)
        serial_events = sink.events

        plan = FaultPlan(rules=(FaultRule("rpc.result_delay",
                                          match="original", times=1,
                                          delay_s=4.0),))
        sink = telemetry.Telemetry()
        previous = telemetry.set_telemetry(sink)
        try:
            with _fresh_executor(launch=2) as executor:
                scheduler = self._remote_scheduler(executor)
                with inject(plan):
                    results = scheduler.run(
                        _campaign_jobs(reference["trainer"],
                                       reference["design"]))
        finally:
            telemetry.set_telemetry(previous)
        remote_events = sink.events

        assert [r.score for r in results] == reference["scores"]
        # The delayed job (submitted first) was accepted last.
        assert executor.last_stats["result_order"][-1] == 0

        def signatures(events):
            # Placement is exactly what the contract excludes: the local
            # pool's parallel.* events and the transport's rpc.* events.
            return [e.signature() for e in events
                    if not e.name.startswith(("rpc.", "parallel."))]

        assert signatures(serial_events) == signatures(remote_events)
        trains = [e for e in remote_events if e.name == "job.train"]
        assert len(trains) == len(jobs)  # worker buffers made it home

    def test_fail_mode_releases_leases_for_resume(self, reference, tmp_path):
        """Satellite: all workers gone + ``fallback="fail"`` exits loudly
        with no lease residue, and a serial re-run resumes bit-identically."""
        store = ResultStore(str(tmp_path))
        with _fresh_executor(worker_deadline_s=0.3,
                             fallback="fail") as executor:
            scheduler = self._remote_scheduler(executor, store=store)
            jobs = _campaign_jobs(reference["trainer"], reference["design"])
            with pytest.raises(NoWorkersError):
                scheduler.run(jobs)
        residue = [name for _, _, files in os.walk(str(tmp_path))
                   for name in files if not name.endswith(".json")]
        assert residue == []  # leases released on the failure path
        resumed = CampaignScheduler(ParallelConfig(max_workers=1),
                                    store=ResultStore(str(tmp_path)))
        results = resumed.run(_campaign_jobs(reference["trainer"],
                                             reference["design"]))
        assert [r.score for r in results] == reference["scores"]
        assert _store_snapshot(str(tmp_path)) == reference["store"]


# --------------------------------------------------------------------------- #
# CLI surface
# --------------------------------------------------------------------------- #
class TestDistributedCli:
    def test_campaign_flags_parse(self):
        args = build_parser().parse_args(
            ["campaign", "--backend", "remote", "--remote-workers", "3",
             "--remote-port", "7777", "--remote-fallback", "fail",
             "--remote-deadline", "12.5"])
        assert args.backend == "remote"
        assert args.remote_workers == 3
        assert args.remote_port == 7777
        assert args.remote_fallback == "fail"
        assert args.remote_deadline == 12.5

    def test_backend_defaults_to_local(self):
        assert build_parser().parse_args(["run"]).backend == "local"

    def test_worker_flags_parse(self):
        args = build_parser().parse_args(
            ["worker", "--connect", "10.0.0.5:4321"])
        assert args.command == "worker"
        assert args.connect == "10.0.0.5:4321"

    def test_worker_malformed_connect(self):
        assert main(["worker", "--connect", "nocolon"]) == 2
        assert main(["worker", "--connect", "host:notaport"]) == 2

    def test_remote_run_end_to_end(self, tmp_path, capsys):
        exit_code = main([
            "run", "--environment", "fcc", "--num-designs", "2",
            "--train-epochs", "6", "--checkpoint-interval", "3",
            "--num-seeds", "1", "--num-chunks", "6",
            "--dataset-scale", "0.02", "--no-early-stopping",
            "--backend", "remote", "--remote-workers", "2",
            "--store", str(tmp_path / "store")])
        assert exit_code == 0
        captured = capsys.readouterr().out
        assert "original score" in captured
