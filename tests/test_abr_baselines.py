"""Tests for the classic ABR baseline policies."""

import numpy as np
import pytest

from repro.abr import (
    BASELINE_POLICIES,
    BolaPolicy,
    BufferBasedPolicy,
    FixedBitratePolicy,
    LinearQoE,
    RandomPolicy,
    RateBasedPolicy,
    RobustMPCPolicy,
    make_baseline,
    run_session,
    synthetic_video,
)
from repro.traces import Trace, generate_fcc_trace


def _observation_with(sample_observation, **overrides):
    obs = sample_observation.copy()
    for key, value in overrides.items():
        setattr(obs, key, value)
    return obs


class TestFixedAndRandom:
    def test_fixed_policy_clamps_to_ladder(self, sample_observation):
        assert FixedBitratePolicy(3)(sample_observation) == 3
        assert FixedBitratePolicy(99)(sample_observation) == 5

    def test_random_policy_in_range_and_seedable(self, sample_observation):
        policy_a = RandomPolicy(seed=0)
        policy_b = RandomPolicy(seed=0)
        choices_a = [policy_a(sample_observation) for _ in range(20)]
        choices_b = [policy_b(sample_observation) for _ in range(20)]
        assert choices_a == choices_b
        assert all(0 <= c < 6 for c in choices_a)
        assert len(set(choices_a)) > 1


class TestBufferBased:
    def test_low_buffer_selects_lowest(self, sample_observation):
        obs = _observation_with(sample_observation, buffer_s=1.0)
        assert BufferBasedPolicy(reservoir_s=5.0)(obs) == 0

    def test_high_buffer_selects_highest(self, sample_observation):
        obs = _observation_with(sample_observation, buffer_s=50.0)
        assert BufferBasedPolicy(reservoir_s=5.0, cushion_s=25.0)(obs) == 5

    def test_intermediate_buffer_interpolates(self, sample_observation):
        policy = BufferBasedPolicy(reservoir_s=5.0, cushion_s=25.0)
        obs = _observation_with(sample_observation, buffer_s=17.5)
        choice = policy(obs)
        assert 1 <= choice <= 4

    def test_monotone_in_buffer(self, sample_observation):
        policy = BufferBasedPolicy()
        choices = [policy(_observation_with(sample_observation, buffer_s=b))
                   for b in np.linspace(0, 40, 20)]
        assert all(b >= a for a, b in zip(choices, choices[1:]))

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            BufferBasedPolicy(reservoir_s=-1.0)
        with pytest.raises(ValueError):
            BufferBasedPolicy(cushion_s=0.0)


class TestRateBased:
    def test_selects_highest_sustainable_bitrate(self, sample_observation):
        obs = sample_observation.copy()
        obs.throughput_mbps_history[:] = 2.0  # sustainable: 1850 kbps (index 3)
        assert RateBasedPolicy()(obs) == 3

    def test_zero_history_selects_lowest(self, fresh_observation):
        assert RateBasedPolicy()(fresh_observation) == 0

    def test_safety_factor_is_conservative(self, sample_observation):
        obs = sample_observation.copy()
        obs.throughput_mbps_history[:] = 2.0
        aggressive = RateBasedPolicy(safety_factor=1.0)(obs)
        cautious = RateBasedPolicy(safety_factor=2.0)(obs)
        assert cautious <= aggressive

    def test_harmonic_mean_punishes_outliers(self, sample_observation):
        obs = sample_observation.copy()
        obs.throughput_mbps_history[:] = 10.0
        obs.throughput_mbps_history[-1] = 0.5
        prediction = RateBasedPolicy(window=8).predict_throughput_mbps(obs)
        assert prediction < np.mean(obs.throughput_mbps_history)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            RateBasedPolicy(safety_factor=0.0)


class TestBola:
    def test_low_buffer_prefers_low_bitrate(self, sample_observation):
        obs = _observation_with(sample_observation, buffer_s=0.5)
        assert BolaPolicy()(obs) <= 1

    def test_large_buffer_prefers_high_bitrate(self, sample_observation):
        obs = _observation_with(sample_observation, buffer_s=40.0)
        assert BolaPolicy()(obs) >= 3

    def test_returns_valid_index_across_buffers(self, sample_observation):
        policy = BolaPolicy()
        for buffer_s in np.linspace(0.0, 60.0, 25):
            choice = policy(_observation_with(sample_observation, buffer_s=buffer_s))
            assert 0 <= choice < 6


class TestRobustMPC:
    def test_reasonable_choice_on_fast_history(self, sample_observation):
        obs = sample_observation.copy()
        obs.throughput_mbps_history[:] = 4.0
        obs.buffer_s = 20.0
        choice = RobustMPCPolicy(horizon=3)(obs)
        assert 2 <= choice <= 5

    def test_conservative_on_slow_history(self, sample_observation):
        obs = sample_observation.copy()
        obs.throughput_mbps_history[:] = 0.3
        obs.buffer_s = 2.0
        assert RobustMPCPolicy(horizon=3)(obs) == 0

    def test_prediction_error_discounting(self, sample_observation):
        policy = RobustMPCPolicy(horizon=2)
        obs = sample_observation.copy()
        obs.throughput_mbps_history[:] = 5.0
        policy(obs)  # records a prediction
        obs2 = sample_observation.copy()
        obs2.throughput_mbps_history[:] = 1.0  # large prediction error
        policy(obs2)
        assert len(policy._past_errors) >= 1

    def test_invalid_horizon(self):
        with pytest.raises(ValueError):
            RobustMPCPolicy(horizon=0)

    def test_outperforms_fixed_highest_on_variable_link(self, small_video):
        trace = generate_fcc_trace(duration_s=300, seed=3)
        qoe = LinearQoE(small_video.bitrates_kbps)
        mpc = run_session(RobustMPCPolicy(horizon=3), small_video, trace, qoe=qoe)
        worst = run_session(FixedBitratePolicy(5), small_video, trace, qoe=qoe)
        assert mpc.mean_reward > worst.mean_reward


class TestRegistry:
    def test_make_baseline_registry(self):
        for name in ("fixed", "random", "bba", "rate_based", "bola", "mpc"):
            assert callable(make_baseline(name))
        with pytest.raises(KeyError):
            make_baseline("pensieve")

    def test_all_baselines_complete_a_session(self, small_video, fcc_traceset):
        for name in sorted(set(BASELINE_POLICIES)):
            policy = make_baseline(name)
            result = run_session(policy, small_video, fcc_traceset[0])
            assert result.num_chunks == small_video.num_chunks
