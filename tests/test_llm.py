"""Tests for the LLM substrate: clients, design space, synthetic model, embeddings."""

import numpy as np
import pytest

from repro.core.codegen import CodeBlockError, load_network_builder, load_state_function
from repro.core.filters import random_observation
from repro.llm import (
    ChatMessage,
    Completion,
    DesignSample,
    HashingEmbedder,
    LLMProfile,
    NetworkDesignSpace,
    NetworkDesignSpec,
    OpenAICompatClient,
    OpenAICompatError,
    PROFILES,
    STATE_EXTRA_FEATURES,
    StateDesignSpace,
    StateDesignSpec,
    SyntheticLLM,
    extract_code_blocks,
    first_code_block,
    tokenize_code,
)
from repro.core.prompts import build_network_prompt, build_state_prompt


class TestChatPrimitives:
    def test_chat_message_role_validation(self):
        ChatMessage("user", "hello")
        with pytest.raises(ValueError):
            ChatMessage("robot", "hello")

    def test_extract_code_blocks(self):
        text = "Here is code:\n```python\nx = 1\n```\nand more\n```\ny = 2\n```"
        blocks = extract_code_blocks(text)
        assert blocks == ["x = 1", "y = 2"]

    def test_first_code_block_prefers_fenced(self):
        text = "```python\nimport numpy\n```"
        assert first_code_block(text) == "import numpy"

    def test_first_code_block_accepts_bare_code(self):
        assert first_code_block("def f():\n    return 1").startswith("def f")

    def test_first_code_block_none_for_prose(self):
        assert first_code_block("I cannot help with that.") is None


class TestStateDesignSpace:
    def test_render_baseline_spec_compiles_and_runs(self):
        space = StateDesignSpace()
        code = space.render(StateDesignSpec())
        func = load_state_function(code)
        state = func(random_observation(np.random.default_rng(0)))
        assert state.ndim == 2
        assert np.all(np.isfinite(state))

    @pytest.mark.parametrize("feature", STATE_EXTRA_FEATURES)
    def test_every_extra_feature_compiles(self, feature):
        space = StateDesignSpace()
        code = space.render(StateDesignSpec(extra_features=(feature,)))
        func = load_state_function(code)
        state = func(random_observation(np.random.default_rng(1)))
        assert np.all(np.isfinite(state))

    def test_signed_normalization_produces_negative_values(self):
        space = StateDesignSpace()
        code = space.render(StateDesignSpec(normalization="signed"))
        func = load_state_function(code)
        state = func(random_observation(np.random.default_rng(2)))
        assert state.min() < 0.0

    def test_feature_removal_reduces_rows(self):
        space = StateDesignSpace()
        full = load_state_function(space.render(StateDesignSpec()))
        reduced = load_state_function(space.render(
            StateDesignSpec(include_download_time=False, include_next_sizes=False)))
        obs = random_observation(np.random.default_rng(3))
        assert reduced(obs).shape[0] == full(obs).shape[0] - 2

    def test_syntax_defect_fails_compilation(self):
        code = StateDesignSpace().render(StateDesignSpec(defect="syntax"))
        with pytest.raises(CodeBlockError):
            load_state_function(code)

    def test_runtime_defect_fails_on_call(self):
        code = StateDesignSpace().render(StateDesignSpec(defect="runtime"))
        func = load_state_function(code)
        with pytest.raises(Exception):
            func(random_observation(np.random.default_rng(0)))

    def test_raw_sizes_defect_violates_normalization(self):
        code = StateDesignSpace().render(StateDesignSpec(defect="raw_sizes"))
        func = load_state_function(code)
        state = func(random_observation(np.random.default_rng(0)))
        assert np.abs(state).max() > 100.0

    def test_spec_validation(self):
        with pytest.raises(ValueError):
            StateDesignSpec(normalization="bogus")
        with pytest.raises(ValueError):
            StateDesignSpec(extra_features=("not_a_feature",))
        with pytest.raises(ValueError):
            StateDesignSpec(defect="explode")

    def test_sample_spec_determinism(self):
        space = StateDesignSpace()
        a = space.sample_spec(np.random.default_rng(5))
        b = space.sample_spec(np.random.default_rng(5))
        assert a == b

    def test_tags_reflect_spec(self):
        spec = StateDesignSpec(normalization="signed", include_next_sizes=False,
                               extra_features=("buffer_diff",), defect="syntax")
        tags = spec.tags
        assert "norm:signed" in tags
        assert "drop:next_sizes" in tags
        assert "feat:buffer_diff" in tags
        assert "defect:syntax" in tags


class TestNetworkDesignSpace:
    @pytest.mark.parametrize("encoder", ["pensieve_conv", "conv", "flatten",
                                         "rnn", "gru", "lstm"])
    def test_every_encoder_builds_and_runs(self, encoder):
        code = NetworkDesignSpace().render(NetworkDesignSpec(encoder=encoder,
                                                             hidden_size=32))
        builder = load_network_builder(code)
        network = builder((6, 8), 6, rng=np.random.default_rng(0))
        from repro import nn
        logits, value = network.forward(nn.tensor(np.zeros((2, 6, 8))))
        assert logits.shape == (2, 6)
        assert value.shape == (2,)

    def test_shared_trunk_and_activation_render(self):
        code = NetworkDesignSpace().render(
            NetworkDesignSpec(encoder="flatten", share_trunk=True,
                              activation="leaky_relu", hidden_size=48))
        assert "share_trunk=True" in code
        assert "leaky_relu" in code
        builder = load_network_builder(code)
        assert builder((6, 8), 6) is not None

    def test_syntax_defect_fails(self):
        code = NetworkDesignSpace().render(NetworkDesignSpec(defect="syntax"))
        with pytest.raises(CodeBlockError):
            load_network_builder(code)

    def test_runtime_defect_fails_on_build(self):
        code = NetworkDesignSpace().render(NetworkDesignSpec(defect="runtime"))
        builder = load_network_builder(code)
        with pytest.raises(Exception):
            builder((6, 8), 6)

    def test_shape_defect_returns_wrong_type(self):
        code = NetworkDesignSpace().render(NetworkDesignSpec(defect="shape"))
        builder = load_network_builder(code)
        assert builder((6, 8), 6) is None

    def test_spec_validation(self):
        with pytest.raises(ValueError):
            NetworkDesignSpec(encoder="transformer")
        with pytest.raises(ValueError):
            NetworkDesignSpec(hidden_size=0)


class TestSyntheticLLM:
    def test_profiles_registered(self):
        assert set(PROFILES) == {"gpt-3.5", "gpt-4"}
        assert PROFILES["gpt-4"].compile_success_rate > \
            PROFILES["gpt-3.5"].compile_success_rate

    def test_profile_validation(self):
        with pytest.raises(ValueError):
            LLMProfile("bad", 1.5, 0.5, 0.5)

    def test_unknown_profile_rejected(self):
        with pytest.raises(KeyError):
            SyntheticLLM("gpt-5")

    def test_complete_returns_code_block(self):
        client = SyntheticLLM("gpt-4", seed=0)
        completion = client.complete(build_state_prompt())
        assert isinstance(completion, Completion)
        assert first_code_block(completion.text) is not None
        assert completion.metadata["kind"] == "state"

    def test_prompt_kind_inference(self):
        client = SyntheticLLM("gpt-4", seed=0)
        state_completion = client.complete(build_state_prompt())
        network_completion = client.complete(build_network_prompt())
        assert state_completion.metadata["kind"] == "state"
        assert network_completion.metadata["kind"] == "network"

    def test_seeded_completion_is_deterministic(self):
        client = SyntheticLLM("gpt-4", seed=0)
        a = client.complete(build_state_prompt(), seed=7).text
        b = client.complete(build_state_prompt(), seed=7).text
        assert a == b

    def test_generation_stream_is_reproducible_for_same_client_seed(self):
        texts_a = [SyntheticLLM("gpt-3.5", seed=3).complete(build_state_prompt()).text
                   for _ in range(1)]
        texts_b = [SyntheticLLM("gpt-3.5", seed=3).complete(build_state_prompt()).text
                   for _ in range(1)]
        assert texts_a == texts_b

    def test_defect_rates_roughly_match_profile(self):
        client = SyntheticLLM("gpt-3.5", seed=1)
        rng = np.random.default_rng(0)
        samples = [client.generate_design("state", rng=rng) for _ in range(300)]
        defects = sum(1 for s in samples
                      if any(t.startswith("defect:") for t in s.tags))
        healthy_fraction = 1 - defects / len(samples)
        # Healthy fraction ≈ compile_rate * normalized_given_compilable ≈ 0.27.
        assert 0.15 < healthy_fraction < 0.42

    def test_generate_design_unknown_kind(self):
        with pytest.raises(ValueError):
            SyntheticLLM("gpt-4").generate_design("protocol")

    def test_gpt4_generates_more_creative_designs(self):
        rng35 = np.random.default_rng(0)
        rng4 = np.random.default_rng(0)
        gpt35 = SyntheticLLM("gpt-3.5", seed=0)
        gpt4 = SyntheticLLM("gpt-4", seed=0)
        extras35 = sum(len(gpt35._state_space.sample_spec(
            rng35, creativity=gpt35.profile.creativity).extra_features)
            for _ in range(200))
        extras4 = sum(len(gpt4._state_space.sample_spec(
            rng4, creativity=gpt4.profile.creativity).extra_features)
            for _ in range(200))
        assert extras4 > extras35


class TestEmbeddings:
    def test_embedding_is_unit_norm_and_deterministic(self):
        embedder = HashingEmbedder(dimension=64)
        text = "def f(x):\n    return x + 1"
        a = embedder.embed(text)
        b = embedder.embed(text)
        np.testing.assert_array_equal(a, b)
        assert np.linalg.norm(a) == pytest.approx(1.0)

    def test_similar_code_more_similar_than_different_code(self):
        embedder = HashingEmbedder()
        base = "def state_func(a, b):\n    return a / b"
        similar = "def state_func(a, b):\n    return a / (b + 1)"
        different = "class Foo:\n    pass\n\nprint('hello world')"
        assert embedder.similarity(base, similar) > embedder.similarity(base, different)

    def test_batch_embedding_shape(self):
        embedder = HashingEmbedder(dimension=32)
        batch = embedder.embed_batch(["a = 1", "b = 2", "c = 3"])
        assert batch.shape == (3, 32)
        assert embedder.embed_batch([]).shape == (0, 32)

    def test_dimension_validation(self):
        with pytest.raises(ValueError):
            HashingEmbedder(dimension=2)

    def test_tokenizer_splits_identifiers_and_operators(self):
        tokens = tokenize_code("x_1 = foo(3.5) + bar")
        assert "x_1" in tokens and "foo" in tokens and "+" in tokens and "3.5" in tokens


class TestOpenAICompatClient:
    def test_requires_api_key(self, monkeypatch):
        monkeypatch.delenv("OPENAI_API_KEY", raising=False)
        client = OpenAICompatClient(model="gpt-4", api_key=None)
        with pytest.raises(OpenAICompatError):
            client.complete([ChatMessage("user", "hi")])

    def test_model_name_exposed(self):
        client = OpenAICompatClient(model="gpt-3.5-turbo", api_key="k")
        assert client.model_name == "gpt-3.5-turbo"
