"""Integration tests spanning multiple subsystems.

These tests exercise the realistic end-to-end flows a user of the library
would run: training an RL agent on generated traces, pushing a generated
design through codegen + filters + training, evaluating trained policies in
both the simulator and the emulator, and exercising the early-stopping path
inside the full pipeline.
"""

import numpy as np
import pytest

from repro.abr import (
    BufferBasedPolicy,
    LinearQoE,
    RobustMPCPolicy,
    StreamingSession,
    run_session,
    synthetic_video,
)
from repro.analysis import build_design_corpus, ExperimentScale
from repro.core import (
    CandidatePool,
    Design,
    DesignGenerator,
    DesignKind,
    DesignTrainer,
    EarlyStoppingConfig,
    EvaluationConfig,
    FilterPipeline,
    GenerationConfig,
    RewardTrajectoryClassifier,
    TestScoreProtocol,
    cross_validate_predictors,
    instantiate_agent,
)
from repro.core.predictors import DesignSampleFeatures
from repro.emulation import Emulator
from repro.llm import SyntheticLLM
from repro.rl import A2CConfig, A2CTrainer, ABRAgent, evaluate_agent
from repro.traces import TraceSet, build_dataset, generate_starlink_trace

FAST_EVAL = EvaluationConfig(train_epochs=10, checkpoint_interval=5,
                             last_k_checkpoints=2, num_seeds=1,
                             a2c=A2CConfig(entropy_anneal_epochs=10))


@pytest.fixture(scope="module")
def starlink_setup():
    video = synthetic_video("standard", num_chunks=10, seed=3)
    train, test = build_dataset("starlink", seed=0, scale=0.1)
    return video, train, test


class TestTrainedAgentAcrossBackends:
    def test_rl_agent_runs_in_simulator_and_emulator(self, starlink_setup):
        video, train, test = starlink_setup
        session = StreamingSession(video, train[0])
        agent = ABRAgent.original(session.observe(), video.num_bitrates,
                                  rng=np.random.default_rng(0))
        trainer = A2CTrainer(agent, video, train, seed=0,
                             config=A2CConfig(entropy_anneal_epochs=10))
        trainer.train(10)

        sim_score = evaluate_agent(agent, video, test, seed=0)
        emulator = Emulator(video, qoe=LinearQoE(video.bitrates_kbps))
        emu_score = emulator.evaluate(agent.greedy_policy(), test)
        assert np.isfinite(sim_score)
        assert np.isfinite(emu_score)

    def test_classic_baselines_compete_in_both_backends(self, starlink_setup):
        video, _, test = starlink_setup
        policies = {"bba": BufferBasedPolicy(), "mpc": RobustMPCPolicy(horizon=3)}
        emulator = Emulator(video)
        for name, policy in policies.items():
            sim = np.mean([run_session(policy, video, t).mean_reward for t in test])
            emu = emulator.evaluate(policy, test)
            assert np.isfinite(sim) and np.isfinite(emu)


class TestGeneratedDesignEndToEnd:
    def test_generated_state_trains_and_scores(self, starlink_setup):
        video, train, test = starlink_setup
        client = SyntheticLLM("gpt-4", seed=5)
        generator = DesignGenerator(client, GenerationConfig(base_seed=5))
        pool = CandidatePool(generator.generate_states(6))
        FilterPipeline().apply(pool)
        survivors = pool.surviving_prechecks()
        assert survivors, "expected at least one surviving design"

        trainer = DesignTrainer(video, train, test, config=FAST_EVAL)
        protocol = TestScoreProtocol(trainer)
        score = protocol.score_design(survivors[0])
        assert np.isfinite(score)
        assert survivors[0].test_score == pytest.approx(score)

    def test_generated_network_paired_with_original_state(self, starlink_setup):
        video, train, test = starlink_setup
        client = SyntheticLLM("gpt-3.5", seed=11)
        generator = DesignGenerator(client, GenerationConfig(base_seed=2))
        pool = CandidatePool(generator.generate_networks(6))
        FilterPipeline().apply(pool)
        survivors = pool.surviving_prechecks()
        assert survivors
        agent = instantiate_agent(None, survivors[0], video, train, seed=0)
        trajectory_score = evaluate_agent(agent, video, test, seed=0)
        assert np.isfinite(trajectory_score)


class TestEarlyStoppingIntegration:
    def test_classifier_trained_on_real_corpus_early_stops_designs(self):
        scale = ExperimentScale(dataset_scale=0.02, num_chunks=8, train_epochs=8,
                                checkpoint_interval=4, last_k_checkpoints=2,
                                num_seeds=1, seed=1)
        corpus = build_design_corpus("fcc", "gpt-4", num_designs=14, scale=scale)
        if len(corpus) < 4:
            pytest.skip("too few surviving designs in this tiny corpus")
        classifier = RewardTrajectoryClassifier(EarlyStoppingConfig(
            reward_prefix_length=4, training_epochs=40,
            top_fraction=0.25, smoothed_fraction=0.5))
        classifier.fit([s.reward_prefix for s in corpus],
                       [s.final_score for s in corpus])
        decisions = [classifier.should_stop(s.reward_prefix) for s in corpus]
        assert len(decisions) == len(corpus)
        # The tuned threshold must keep (at least one of) the best designs in
        # the corpus — final scores can tie when policies converge to the same
        # behaviour, so any design achieving the maximum counts.
        finals = np.array([s.final_score for s in corpus])
        best_indices = np.flatnonzero(finals == finals.max())
        assert any(not decisions[i] for i in best_indices)

    def test_cross_validation_on_real_corpus(self):
        scale = ExperimentScale(dataset_scale=0.02, num_chunks=8, train_epochs=6,
                                checkpoint_interval=3, last_k_checkpoints=2,
                                num_seeds=1, seed=2)
        corpus = build_design_corpus("fcc", "gpt-4", num_designs=14, scale=scale)
        if len(corpus) < 10:
            # Top up with synthetic-but-plausible samples so the protocol runs.
            rng = np.random.default_rng(0)
            while len(corpus) < 10:
                base = corpus[int(rng.integers(len(corpus)))]
                corpus.append(DesignSampleFeatures(
                    reward_prefix=[r + rng.normal(0, 0.1) for r in base.reward_prefix],
                    code=base.code + f"\n# copy {len(corpus)}",
                    final_score=base.final_score + float(rng.normal(0, 0.05))))
        results = cross_validate_predictors(
            corpus, predictor_names=("reward_only", "heuristic_max"),
            num_folds=2, train_fraction_per_fold=0.5, top_fraction=0.2, seed=0,
            predictor_kwargs={
                "reward_only": {"config": EarlyStoppingConfig(
                    reward_prefix_length=6, training_epochs=30,
                    top_fraction=0.2, smoothed_fraction=0.5)},
                "heuristic_max": {"top_fraction": 0.2},
            })
        assert {r.name for r in results} == {"reward_only", "heuristic_max"}


class TestTraceToSessionPipeline:
    def test_starlink_trace_through_full_stack(self):
        """A Starlink trace drives simulator, emulator and state functions alike."""
        video = synthetic_video("standard", num_chunks=8, seed=0)
        trace = generate_starlink_trace(duration_s=150, seed=9)
        policy = BufferBasedPolicy()
        sim_result = run_session(policy, video, trace)
        emu_result = Emulator(video).run(policy, trace)
        assert sim_result.num_chunks == emu_result.num_chunks == video.num_chunks
        # Both backends expose the same record schema.
        assert set(vars(sim_result.records[0])) == set(vars(emu_result.records[0]))
