"""Tests for the pre-check filters and the design generator."""

import numpy as np
import pytest

from repro.core import (
    CandidatePool,
    CompilationCheck,
    Design,
    DesignGenerator,
    DesignKind,
    DesignStatus,
    FilterPipeline,
    GenerationConfig,
    NormalizationCheck,
    PromptConfig,
)
from repro.core.filters import random_observation
from repro.llm import ChatMessage, Completion, NetworkDesignSpace, NetworkDesignSpec, \
    StateDesignSpace, StateDesignSpec, SyntheticLLM


GOOD_STATE = StateDesignSpace().render(StateDesignSpec())
RAW_BYTES_STATE = StateDesignSpace().render(StateDesignSpec(defect="raw_sizes"))
BROKEN_STATE = StateDesignSpace().render(StateDesignSpec(defect="syntax"))
RUNTIME_ERROR_STATE = StateDesignSpace().render(StateDesignSpec(defect="runtime"))
GOOD_NETWORK = NetworkDesignSpace().render(NetworkDesignSpec(hidden_size=32))
BROKEN_NETWORK = NetworkDesignSpace().render(NetworkDesignSpec(defect="runtime"))


class TestRandomObservation:
    def test_fields_are_plausible(self, rng):
        obs = random_observation(rng)
        assert obs.throughput_mbps_history.shape == (8,)
        assert np.all(obs.throughput_mbps_history > 0)
        assert 0 < obs.remaining_chunks <= obs.total_chunks
        assert obs.next_chunk_sizes_bytes.shape == (6,)

    def test_randomness_covers_wide_range(self, rng):
        maxima = [random_observation(rng).throughput_mbps_history.max()
                  for _ in range(30)]
        assert max(maxima) > 50.0  # includes 4G/5G-like regimes


class TestCompilationCheck:
    def test_good_state_passes(self):
        result = CompilationCheck().check(Design(kind="state", code=GOOD_STATE))
        assert result.passed

    def test_syntax_error_fails(self):
        result = CompilationCheck().check(Design(kind="state", code=BROKEN_STATE))
        assert not result.passed
        assert "syntax" in result.reason.lower()

    def test_runtime_error_fails(self):
        result = CompilationCheck().check(Design(kind="state",
                                                 code=RUNTIME_ERROR_STATE))
        assert not result.passed

    def test_good_network_passes(self):
        result = CompilationCheck().check(Design(kind="network", code=GOOD_NETWORK))
        assert result.passed

    def test_broken_network_fails(self):
        result = CompilationCheck().check(Design(kind="network", code=BROKEN_NETWORK))
        assert not result.passed

    def test_network_returning_none_fails(self):
        code = "def build_network(state_shape, num_actions, rng=None):\n    return None"
        result = CompilationCheck().check(Design(kind="network", code=code))
        assert not result.passed

    def test_network_with_wrong_action_count_fails(self):
        code = ("def build_network(state_shape, num_actions, rng=None):\n"
                "    return nn_library.GenericActorCritic(state_shape, 3,\n"
                "                                         hidden_sizes=(8,), rng=rng)\n")
        result = CompilationCheck().check(Design(kind="network", code=code))
        assert not result.passed
        assert "logits" in result.reason

    def test_invalid_configuration(self):
        with pytest.raises(ValueError):
            CompilationCheck(num_trial_inputs=0)


class TestNormalizationCheck:
    def test_good_state_passes(self):
        result = NormalizationCheck().check(Design(kind="state", code=GOOD_STATE))
        assert result.passed

    def test_raw_bytes_state_fails(self):
        result = NormalizationCheck().check(Design(kind="state", code=RAW_BYTES_STATE))
        assert not result.passed
        assert "threshold" in result.reason

    def test_threshold_is_configurable(self):
        # With an enormous threshold even raw byte counts pass.
        permissive = NormalizationCheck(threshold=1e12)
        assert permissive.check(Design(kind="state", code=RAW_BYTES_STATE)).passed

    def test_network_designs_are_not_checked(self):
        result = NormalizationCheck().check(Design(kind="network", code=GOOD_NETWORK))
        assert result.passed
        assert "not applicable" in result.reason

    def test_invalid_configuration(self):
        with pytest.raises(ValueError):
            NormalizationCheck(threshold=0.0)
        with pytest.raises(ValueError):
            NormalizationCheck(num_fuzz_inputs=0)


class TestFilterPipeline:
    def test_statuses_and_report(self):
        designs = [
            Design(kind="state", code=GOOD_STATE),
            Design(kind="state", code=RAW_BYTES_STATE),
            Design(kind="state", code=BROKEN_STATE),
            Design(kind="network", code=GOOD_NETWORK),
        ]
        report = FilterPipeline().apply(designs)
        assert report.total == 4
        # The static audit rejects the defective designs before exec, but
        # folds them into the same Table 2 buckets the dynamic checks used:
        # the raw-bytes state still counts as compilable, the syntax error
        # does not.
        assert report.compilable == 3
        assert report.well_normalized == 2
        assert report.rejected_by_audit == 2
        assert designs[0].status is DesignStatus.PENDING_EVALUATION
        assert designs[1].status is DesignStatus.REJECTED_AUDIT
        assert designs[2].status is DesignStatus.REJECTED_AUDIT
        assert designs[3].status is DesignStatus.PENDING_EVALUATION
        assert report.rejection_reasons == {"audit.compilation": 1,
                                            "audit.normalization": 1}
        assert 0.0 < report.compilable_fraction <= 1.0
        assert designs[1].audit_findings
        assert designs[3].lowerability == "hand_fused"  # PensieveNetwork

    def test_dynamic_checks_without_audit(self):
        # With the audit stage disabled the dynamic pre-checks behave
        # exactly as before the auditor existed.
        designs = [
            Design(kind="state", code=GOOD_STATE),
            Design(kind="state", code=RAW_BYTES_STATE),
            Design(kind="state", code=BROKEN_STATE),
            Design(kind="network", code=GOOD_NETWORK),
        ]
        report = FilterPipeline(audit_check=None).apply(designs)
        assert report.compilable == 3
        assert report.well_normalized == 2
        assert report.rejected_by_audit == 0
        assert designs[1].status is DesignStatus.REJECTED_NORMALIZATION
        assert designs[2].status is DesignStatus.REJECTED_COMPILATION
        assert report.rejection_reasons == {"compilation": 1, "normalization": 1}

    def test_empty_report_fractions(self):
        report = FilterPipeline().apply([])
        assert report.compilable_fraction == 0.0
        assert report.well_normalized_fraction == 0.0


class _ScriptedClient:
    """LLM stub returning canned responses (for generator edge cases)."""

    model_name = "scripted"

    def __init__(self, responses):
        self._responses = list(responses)
        self._index = 0

    def complete(self, messages, temperature=1.0, seed=None):
        text = self._responses[self._index % len(self._responses)]
        self._index += 1
        return Completion(text=text, model=self.model_name)


class TestDesignGenerator:
    def test_generates_requested_count_and_kind(self):
        generator = DesignGenerator(SyntheticLLM("gpt-4", seed=0),
                                    GenerationConfig(base_seed=0))
        states = generator.generate_states(5)
        networks = generator.generate_networks(3)
        assert len(states) == 5 and len(networks) == 3
        assert all(d.kind is DesignKind.STATE for d in states)
        assert all(d.kind is DesignKind.NETWORK for d in networks)
        assert all(d.origin_model.startswith("synthetic-gpt-4") for d in states)

    def test_base_seed_makes_generation_reproducible(self):
        def codes(seed):
            generator = DesignGenerator(SyntheticLLM("gpt-4", seed=1),
                                        GenerationConfig(base_seed=seed))
            return [d.code for d in generator.generate_states(4)]
        assert codes(11) == codes(11)

    def test_response_without_code_block_marked_rejected(self):
        client = _ScriptedClient(["I am sorry, I cannot write that function."])
        generator = DesignGenerator(client)
        designs = generator.generate_states(2)
        assert all(d.status is DesignStatus.REJECTED_COMPILATION for d in designs)

    def test_populate_pool(self):
        pool = CandidatePool()
        generator = DesignGenerator(SyntheticLLM("gpt-3.5", seed=0))
        generator.populate_pool(pool, DesignKind.STATE, 4)
        assert len(pool) == 4

    def test_count_validation(self):
        generator = DesignGenerator(SyntheticLLM("gpt-4"))
        with pytest.raises(ValueError):
            generator.generate_states(0)

    def test_environment_hint_threaded_through_prompt(self):
        config = GenerationConfig(prompt=PromptConfig(
            environment_hint="a congested Starlink uplink"))
        generator = DesignGenerator(SyntheticLLM("gpt-4", seed=0), config)
        designs = generator.generate_states(1)
        assert len(designs) == 1


class TestTable2Calibration:
    """The pre-check pass rates should land near the published Table 2 numbers."""

    @pytest.mark.parametrize("profile,compilable_range,normalized_range", [
        ("gpt-3.5", (0.25, 0.60), (0.12, 0.45)),
        ("gpt-4", (0.50, 0.85), (0.32, 0.68)),
    ])
    def test_precheck_rates(self, profile, compilable_range, normalized_range):
        generator = DesignGenerator(SyntheticLLM(profile, seed=42),
                                    GenerationConfig(base_seed=0))
        designs = generator.generate_states(120)
        report = FilterPipeline().apply(designs)
        assert compilable_range[0] <= report.compilable_fraction <= compilable_range[1]
        assert normalized_range[0] <= report.well_normalized_fraction <= normalized_range[1]

    def test_gpt4_rates_exceed_gpt35(self):
        reports = {}
        for profile in ("gpt-3.5", "gpt-4"):
            generator = DesignGenerator(SyntheticLLM(profile, seed=7),
                                        GenerationConfig(base_seed=1))
            reports[profile] = FilterPipeline().apply(generator.generate_states(120))
        assert reports["gpt-4"].compilable_fraction > reports["gpt-3.5"].compilable_fraction
        assert reports["gpt-4"].well_normalized_fraction > \
            reports["gpt-3.5"].well_normalized_fraction
