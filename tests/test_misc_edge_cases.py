"""Additional edge-case tests across packages (failure injection and limits)."""

import numpy as np
import pytest

from repro import nn
from repro.abr import LinearQoE, StreamingSession, synthetic_video
from repro.core import Design, DesignStatus, CandidatePool
from repro.core.codegen import CodeBlockError, compile_code_block
from repro.emulation import LinkConfig, PacketDeliveryLink
from repro.llm import NetworkDesignSpace, NetworkDesignSpec, StateDesignSpace, StateDesignSpec
from repro.traces import Trace


class TestSandboxHardening:
    def test_builtins_are_restricted(self):
        code = "def f():\n    return open('/etc/passwd').read()"
        func = compile_code_block(code, "f")
        with pytest.raises(Exception):
            func()

    def test_exec_and_eval_not_available(self):
        code = "def f():\n    return eval('1+1')"
        func = compile_code_block(code, "f")
        with pytest.raises(Exception):
            func()

    def test_numpy_alias_available_without_import(self):
        code = "def f():\n    return np.arange(3).sum()"
        func = compile_code_block(code, "f")
        assert func() == 3

    def test_math_and_statistics_available(self):
        code = ("import math\nimport statistics\n\n"
                "def f():\n    return math.sqrt(4) + statistics.mean([1, 3])")
        assert compile_code_block(code, "f")() == pytest.approx(4.0)

    def test_collections_import_allowed(self):
        code = ("from collections import deque\n\n"
                "def f():\n    d = deque([1, 2, 3], maxlen=2)\n    return sum(d)")
        assert compile_code_block(code, "f")() == 5


class TestDesignSpaceRenderingDetails:
    def test_network_extra_depth_adds_layers(self):
        space = NetworkDesignSpace()
        shallow = space.render(NetworkDesignSpec(encoder="flatten", extra_depth=0))
        deep = space.render(NetworkDesignSpec(encoder="flatten", extra_depth=1))
        assert shallow.count("hidden_sizes=(") == 1
        # Deeper spec renders a longer hidden_sizes tuple.
        assert deep.split("hidden_sizes=")[1].split(")")[0].count(",") > \
            shallow.split("hidden_sizes=")[1].split(")")[0].count(",")

    def test_state_render_is_deterministic(self):
        spec = StateDesignSpec(normalization="signed",
                               extra_features=("buffer_diff", "throughput_ema"))
        space = StateDesignSpace()
        assert space.render(spec) == space.render(spec)

    def test_sample_includes_code_and_tags(self):
        sample = StateDesignSpace().sample(np.random.default_rng(0))
        assert sample.kind == "state"
        assert "state_func" in sample.code
        assert sample.describe().startswith("state design")


class TestPoolAndDesignEdgeCases:
    def test_pool_constructor_rejects_duplicate_ids(self):
        design = Design(kind="state", code="x = 1")
        with pytest.raises(ValueError):
            CandidatePool([design, design])

    def test_record_training_without_checkpoints(self):
        design = Design(kind="state", code="x = 1")
        design.record_training([1.0, 2.0])
        assert design.checkpoint_scores == []

    def test_summary_before_evaluation(self):
        design = Design(kind="network", code="y = 1")
        assert "score=-" in design.summary()

    def test_pool_statistics_all_statuses_present(self):
        pool = CandidatePool([Design(kind="state", code="x = 1")])
        stats = pool.statistics()
        for status in DesignStatus:
            assert status.value in stats


class TestSimulatorAndLinkLimits:
    def test_session_with_tiny_video(self, flat_trace):
        video = synthetic_video("standard", num_chunks=1, seed=0)
        session = StreamingSession(video, flat_trace)
        session.step(0)
        assert session.done

    def test_qoe_override_in_session(self, flat_trace, small_video):
        qoe = LinearQoE(small_video.bitrates_kbps, rebuffer_penalty=0.0)
        session = StreamingSession(small_video, flat_trace, qoe=qoe)
        record, _ = session.step(5)
        assert record.reward == pytest.approx(4.3)

    def test_link_with_bursty_trace_has_positive_capacity(self):
        # Alternating 0 / 10 Mbps windows still deliver packets over time.
        timestamps = np.arange(0.0, 20.0, 1.0)
        throughputs = np.tile([0.0, 10.0], 10)
        link = PacketDeliveryLink(Trace(timestamps, throughputs),
                                  LinkConfig(granularity_ms=500))
        assert link.mean_throughput_mbps > 0
        end = link.time_to_deliver(0.0, 100_000)
        assert end > 0.0

    def test_nn_module_state_dict_shape_mismatch(self):
        a = nn.Dense(2, 3)
        b = nn.Dense(3, 2)
        with pytest.raises(Exception):
            b.load_state_dict(a.state_dict())
