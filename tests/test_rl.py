"""Tests for the RL substrate: policies, rollouts, schedules and the A2C trainer."""

import numpy as np
import pytest

from repro import nn
from repro.abr import LinearQoE, StreamingSession, synthetic_video
from repro.rl import (
    A2CConfig,
    A2CTrainer,
    ABRAgent,
    ConstantSchedule,
    ExponentialDecaySchedule,
    LinearSchedule,
    Trajectory,
    action_entropy,
    collect_episode,
    discounted_returns,
    evaluate_agent,
    greedy_action,
    log_prob_of,
    sample_action,
)
from repro.traces import TraceSet, generate_fcc_trace


@pytest.fixture
def tiny_agent(small_video, sample_observation):
    return ABRAgent.original(sample_observation, small_video.num_bitrates,
                             rng=np.random.default_rng(0))


class TestPolicyUtilities:
    def test_sample_action_respects_distribution(self):
        rng = np.random.default_rng(0)
        probs = np.array([0.0, 0.0, 1.0, 0.0])
        assert all(sample_action(probs, rng) == 2 for _ in range(10))

    def test_sample_action_handles_degenerate_input(self):
        rng = np.random.default_rng(0)
        actions = {sample_action(np.zeros(4), rng) for _ in range(50)}
        assert actions.issubset({0, 1, 2, 3})
        assert len(actions) > 1  # falls back to uniform

    def test_sample_action_renormalizes(self):
        rng = np.random.default_rng(0)
        probs = np.array([0.5, 0.5, 0.5, 0.5])  # not normalized
        counts = np.bincount([sample_action(probs, rng) for _ in range(200)],
                             minlength=4)
        assert np.all(counts > 0)

    def test_greedy_action(self):
        assert greedy_action(np.array([0.1, 0.7, 0.2])) == 1

    def test_log_prob_of_selects_action_entries(self):
        logits = nn.tensor(np.log(np.array([[0.2, 0.8], [0.5, 0.5]])))
        log_probs = log_prob_of(logits, np.array([1, 0]))
        np.testing.assert_allclose(log_probs.numpy(),
                                   np.log([0.8, 0.5]), atol=1e-10)

    def test_action_entropy_uniform_is_maximal(self):
        uniform = nn.tensor(np.zeros((1, 4)))
        peaked = nn.tensor(np.array([[10.0, 0.0, 0.0, 0.0]]))
        assert action_entropy(uniform).item() > action_entropy(peaked).item()


class TestSchedules:
    def test_constant(self):
        schedule = ConstantSchedule(0.5)
        assert schedule(0) == schedule(1000) == 0.5

    def test_linear_interpolation_and_clamp(self):
        schedule = LinearSchedule(1.0, 0.1, 100)
        assert schedule(0) == pytest.approx(1.0)
        assert schedule(50) == pytest.approx(0.55)
        assert schedule(100) == pytest.approx(0.1)
        assert schedule(10_000) == pytest.approx(0.1)

    def test_linear_invalid_duration(self):
        with pytest.raises(ValueError):
            LinearSchedule(1.0, 0.0, 0)

    def test_exponential_decay_with_floor(self):
        schedule = ExponentialDecaySchedule(1.0, 0.5, period=1, floor=0.2)
        assert schedule(0) == pytest.approx(1.0)
        assert schedule(1) == pytest.approx(0.5)
        assert schedule(10) == pytest.approx(0.2)

    def test_exponential_invalid_params(self):
        with pytest.raises(ValueError):
            ExponentialDecaySchedule(1.0, 1.5)
        with pytest.raises(ValueError):
            ExponentialDecaySchedule(1.0, 0.5, period=0)


class TestDiscountedReturns:
    def test_gamma_zero_returns_rewards(self):
        returns = discounted_returns([1.0, 2.0, 3.0], gamma=0.0)
        np.testing.assert_allclose(returns, [1.0, 2.0, 3.0])

    def test_gamma_one_returns_suffix_sums(self):
        returns = discounted_returns([1.0, 2.0, 3.0], gamma=1.0)
        np.testing.assert_allclose(returns, [6.0, 5.0, 3.0])

    def test_bootstrap_value(self):
        returns = discounted_returns([1.0], gamma=0.5, bootstrap_value=10.0)
        np.testing.assert_allclose(returns, [6.0])

    def test_empty(self):
        assert discounted_returns([], gamma=0.9).size == 0


class TestAgent:
    def test_act_returns_valid_index(self, tiny_agent, sample_observation, small_video):
        for greedy in (False, True):
            action = tiny_agent.act(sample_observation, greedy=greedy)
            assert 0 <= action < small_video.num_bitrates

    def test_greedy_policy_is_deterministic(self, tiny_agent, sample_observation):
        policy = tiny_agent.greedy_policy()
        assert policy(sample_observation) == policy(sample_observation)

    def test_act_with_state_returns_features(self, tiny_agent, sample_observation):
        action, state = tiny_agent.act_with_state(sample_observation)
        assert state.shape == (6, 8)
        assert isinstance(action, int)

    def test_from_builder_rejects_non_network(self, sample_observation):
        from repro.abr import StateFunction

        def bad_builder(shape, actions, rng=None):
            return "not a network"

        with pytest.raises(TypeError):
            ABRAgent.from_builder(StateFunction.original(), bad_builder,
                                  sample_observation, 6)

    def test_seed_controls_sampling(self, tiny_agent, sample_observation):
        tiny_agent.seed(1)
        first = [tiny_agent.act(sample_observation) for _ in range(10)]
        tiny_agent.seed(1)
        second = [tiny_agent.act(sample_observation) for _ in range(10)]
        assert first == second


class TestRollout:
    def test_collect_episode_lengths_match(self, tiny_agent, small_video, flat_trace):
        trajectory = collect_episode(tiny_agent, small_video, flat_trace)
        assert len(trajectory) == small_video.num_chunks
        assert len(trajectory.states) == len(trajectory.actions) == len(trajectory.rewards)
        assert trajectory.session is not None
        assert trajectory.session.num_chunks == small_video.num_chunks

    def test_trajectory_aggregates(self, tiny_agent, small_video, flat_trace):
        trajectory = collect_episode(tiny_agent, small_video, flat_trace)
        assert trajectory.total_reward == pytest.approx(sum(trajectory.rewards))
        assert trajectory.mean_reward == pytest.approx(
            trajectory.total_reward / len(trajectory))
        stacked = trajectory.stacked_states()
        assert stacked.shape == (small_video.num_chunks, 6, 8)

    def test_empty_trajectory_properties(self):
        trajectory = Trajectory()
        assert trajectory.total_reward == 0.0
        assert trajectory.mean_reward == 0.0


class TestA2CTrainer:
    def _build(self, video, traces, epochs=15, seed=0):
        session = StreamingSession(video, traces[0])
        agent = ABRAgent.original(session.observe(), video.num_bitrates,
                                  rng=np.random.default_rng(seed))
        config = A2CConfig(entropy_anneal_epochs=epochs)
        return A2CTrainer(agent, video, traces, config=config, seed=seed)

    def test_train_epoch_returns_stats(self, small_video, fcc_traceset):
        trainer = self._build(small_video, fcc_traceset)
        stats = trainer.train_epoch()
        assert stats.epoch == 0
        assert np.isfinite(stats.actor_loss)
        assert np.isfinite(stats.critic_loss)
        assert stats.entropy >= 0.0
        assert stats.grad_norm >= 0.0
        assert stats.trace_name.startswith("fcc")

    def test_train_accumulates_history(self, small_video, fcc_traceset):
        trainer = self._build(small_video, fcc_traceset)
        trainer.train(5)
        assert trainer.epoch == 5
        assert len(trainer.history) == 5
        assert len(trainer.reward_history) == 5

    def test_callback_invoked(self, small_video, fcc_traceset):
        trainer = self._build(small_video, fcc_traceset)
        seen = []
        trainer.train(3, callback=lambda s: seen.append(s.epoch))
        assert seen == [0, 1, 2]

    def test_training_is_seed_reproducible(self, small_video, fcc_traceset):
        rewards_a = self._build(small_video, fcc_traceset, seed=7).train(4)
        rewards_b = self._build(small_video, fcc_traceset, seed=7).train(4)
        np.testing.assert_allclose([s.episode_reward for s in rewards_a],
                                   [s.episode_reward for s in rewards_b])

    def test_unknown_optimizer_rejected(self, small_video, fcc_traceset):
        session = StreamingSession(small_video, fcc_traceset[0])
        agent = ABRAgent.original(session.observe(), small_video.num_bitrates)
        with pytest.raises(ValueError):
            A2CTrainer(agent, small_video, fcc_traceset,
                       config=A2CConfig(optimizer="adagrad"))

    def test_training_beats_worst_fixed_policy(self, small_video):
        # On a stable 3 Mbps link the trained policy must at least avoid the
        # catastrophic always-highest-bitrate behaviour (constant rebuffering).
        from repro.abr import FixedBitratePolicy, run_session

        traces = TraceSet([generate_fcc_trace(duration_s=200, seed=i, mean_mbps=3.0)
                           for i in range(2)], name="train")
        test = TraceSet([generate_fcc_trace(duration_s=200, seed=50, mean_mbps=3.0)],
                        name="test")
        trainer = self._build(small_video, traces, epochs=40, seed=3)
        trainer.train(40)
        after = evaluate_agent(trainer.agent, small_video, test, seed=0)
        worst = np.mean([run_session(FixedBitratePolicy(5), small_video, t).mean_reward
                         for t in test])
        assert after > worst

    def test_evaluate_agent_uses_all_traces(self, small_video, fcc_traceset, tiny_agent):
        score = evaluate_agent(tiny_agent, small_video, fcc_traceset, seed=0)
        assert np.isfinite(score)
