"""Tests for the autograd tensor engine."""

import numpy as np
import pytest

from repro import nn
from repro.nn.tensor import Tensor, concatenate, no_grad, stack, tensor


def numerical_gradient(func, x, eps=1e-6):
    """Central-difference gradient of a scalar-valued function of an array."""
    grad = np.zeros_like(x)
    flat = x.ravel()
    grad_flat = grad.ravel()
    for i in range(flat.size):
        original = flat[i]
        flat[i] = original + eps
        plus = func(x)
        flat[i] = original - eps
        minus = func(x)
        flat[i] = original
        grad_flat[i] = (plus - minus) / (2 * eps)
    return grad


class TestTensorBasics:
    def test_construction_and_shape(self):
        t = tensor([[1.0, 2.0], [3.0, 4.0]])
        assert t.shape == (2, 2)
        assert t.ndim == 2
        assert t.size == 4
        assert len(t) == 2

    def test_item_and_numpy(self):
        t = tensor(3.5)
        assert t.item() == pytest.approx(3.5)
        assert isinstance(t.numpy(), np.ndarray)

    def test_detach_breaks_graph(self):
        t = tensor([1.0, 2.0], requires_grad=True)
        d = (t * 2).detach()
        assert not d.requires_grad

    def test_repr_mentions_grad(self):
        t = tensor([1.0], requires_grad=True)
        assert "requires_grad" in repr(t)

    def test_backward_on_non_scalar_requires_grad_argument(self):
        t = tensor([1.0, 2.0], requires_grad=True)
        out = t * 3
        with pytest.raises(RuntimeError):
            out.backward()

    def test_backward_without_requires_grad_raises(self):
        t = tensor([1.0, 2.0])
        with pytest.raises(RuntimeError):
            t.backward()


class TestArithmeticGradients:
    def test_add_gradient(self):
        a = tensor([1.0, 2.0, 3.0], requires_grad=True)
        b = tensor([4.0, 5.0, 6.0], requires_grad=True)
        (a + b).sum().backward()
        np.testing.assert_allclose(a.grad, np.ones(3))
        np.testing.assert_allclose(b.grad, np.ones(3))

    def test_mul_gradient(self):
        a = tensor([1.0, 2.0, 3.0], requires_grad=True)
        b = tensor([4.0, 5.0, 6.0], requires_grad=True)
        (a * b).sum().backward()
        np.testing.assert_allclose(a.grad, [4.0, 5.0, 6.0])
        np.testing.assert_allclose(b.grad, [1.0, 2.0, 3.0])

    def test_sub_and_neg_gradient(self):
        a = tensor([1.0, 2.0], requires_grad=True)
        b = tensor([3.0, 5.0], requires_grad=True)
        (a - b).sum().backward()
        np.testing.assert_allclose(a.grad, [1.0, 1.0])
        np.testing.assert_allclose(b.grad, [-1.0, -1.0])

    def test_div_gradient(self):
        a = tensor([2.0, 4.0], requires_grad=True)
        b = tensor([4.0, 8.0], requires_grad=True)
        (a / b).sum().backward()
        np.testing.assert_allclose(a.grad, [0.25, 0.125])
        np.testing.assert_allclose(b.grad, [-2.0 / 16.0, -4.0 / 64.0])

    def test_pow_gradient(self):
        a = tensor([2.0, 3.0], requires_grad=True)
        (a ** 3).sum().backward()
        np.testing.assert_allclose(a.grad, [12.0, 27.0])

    def test_radd_rmul_rsub_rdiv(self):
        a = tensor([2.0, 4.0], requires_grad=True)
        out = (1.0 + a) * 2.0
        out = (10.0 - out) / 2.0
        out = 8.0 / (a + 2.0) + out
        out.sum().backward()
        assert a.grad is not None
        assert a.grad.shape == (2,)

    def test_broadcasting_unbroadcasts_gradient(self):
        a = tensor(np.ones((3, 4)), requires_grad=True)
        b = tensor(np.ones(4), requires_grad=True)
        (a + b).sum().backward()
        assert a.grad.shape == (3, 4)
        assert b.grad.shape == (4,)
        np.testing.assert_allclose(b.grad, np.full(4, 3.0))

    def test_scalar_broadcast_gradient(self):
        a = tensor(np.ones((2, 3)), requires_grad=True)
        b = tensor(2.0, requires_grad=True)
        (a * b).sum().backward()
        assert b.grad.shape == ()
        assert float(b.grad) == pytest.approx(6.0)


class TestMatmul:
    def test_matmul_forward(self):
        a = tensor([[1.0, 2.0], [3.0, 4.0]])
        b = tensor([[5.0, 6.0], [7.0, 8.0]])
        np.testing.assert_allclose((a @ b).numpy(), np.array([[19., 22.], [43., 50.]]))

    def test_matmul_gradient_matches_numerical(self):
        rng = np.random.default_rng(0)
        a_data = rng.normal(size=(3, 4))
        b_data = rng.normal(size=(4, 2))
        a = tensor(a_data.copy(), requires_grad=True)
        b = tensor(b_data.copy(), requires_grad=True)
        (a @ b).sum().backward()

        num_a = numerical_gradient(lambda x: float((x @ b_data).sum()), a_data.copy())
        num_b = numerical_gradient(lambda x: float((a_data @ x).sum()), b_data.copy())
        np.testing.assert_allclose(a.grad, num_a, atol=1e-5)
        np.testing.assert_allclose(b.grad, num_b, atol=1e-5)


class TestElementwiseFunctions:
    @pytest.mark.parametrize("op,deriv", [
        ("exp", lambda x: np.exp(x)),
        ("tanh", lambda x: 1 - np.tanh(x) ** 2),
        ("sigmoid", lambda x: (1 / (1 + np.exp(-x))) * (1 - 1 / (1 + np.exp(-x)))),
    ])
    def test_unary_gradients(self, op, deriv):
        x_data = np.array([-1.0, 0.5, 2.0])
        x = tensor(x_data.copy(), requires_grad=True)
        getattr(x, op)().sum().backward()
        np.testing.assert_allclose(x.grad, deriv(x_data), atol=1e-8)

    def test_log_gradient(self):
        x = tensor([1.0, 2.0, 4.0], requires_grad=True)
        x.log().sum().backward()
        np.testing.assert_allclose(x.grad, [1.0, 0.5, 0.25])

    def test_relu_gradient_zero_for_negative(self):
        x = tensor([-2.0, 3.0], requires_grad=True)
        x.relu().sum().backward()
        np.testing.assert_allclose(x.grad, [0.0, 1.0])

    def test_leaky_relu_gradient(self):
        x = tensor([-2.0, 3.0], requires_grad=True)
        x.leaky_relu(0.1).sum().backward()
        np.testing.assert_allclose(x.grad, [0.1, 1.0])

    def test_elu_forward_and_gradient(self):
        x = tensor([-1.0, 2.0], requires_grad=True)
        out = x.elu(1.0)
        np.testing.assert_allclose(out.numpy(), [np.exp(-1) - 1, 2.0])
        out.sum().backward()
        np.testing.assert_allclose(x.grad, [np.exp(-1), 1.0])

    def test_abs_gradient(self):
        x = tensor([-3.0, 2.0], requires_grad=True)
        x.abs().sum().backward()
        np.testing.assert_allclose(x.grad, [-1.0, 1.0])

    def test_clip_gradient_masks_out_of_range(self):
        x = tensor([-5.0, 0.5, 5.0], requires_grad=True)
        x.clip(-1.0, 1.0).sum().backward()
        np.testing.assert_allclose(x.grad, [0.0, 1.0, 0.0])

    def test_sqrt(self):
        x = tensor([4.0, 9.0], requires_grad=True)
        out = x.sqrt()
        np.testing.assert_allclose(out.numpy(), [2.0, 3.0])
        out.sum().backward()
        np.testing.assert_allclose(x.grad, [0.25, 1.0 / 6.0])


class TestReductions:
    def test_sum_all(self):
        x = tensor(np.arange(6.0).reshape(2, 3), requires_grad=True)
        x.sum().backward()
        np.testing.assert_allclose(x.grad, np.ones((2, 3)))

    def test_sum_axis_keepdims(self):
        x = tensor(np.arange(6.0).reshape(2, 3), requires_grad=True)
        out = x.sum(axis=1, keepdims=True)
        assert out.shape == (2, 1)
        out.sum().backward()
        np.testing.assert_allclose(x.grad, np.ones((2, 3)))

    def test_mean_gradient(self):
        x = tensor(np.ones((2, 4)), requires_grad=True)
        x.mean().backward()
        np.testing.assert_allclose(x.grad, np.full((2, 4), 1.0 / 8.0))

    def test_mean_axis(self):
        x = tensor(np.arange(6.0).reshape(2, 3))
        np.testing.assert_allclose(x.mean(axis=0).numpy(), [1.5, 2.5, 3.5])

    def test_max_all_gradient_spreads_across_ties(self):
        x = tensor([1.0, 3.0, 3.0], requires_grad=True)
        x.max().backward()
        np.testing.assert_allclose(x.grad, [0.0, 0.5, 0.5])

    def test_max_axis(self):
        x = tensor(np.array([[1.0, 5.0], [7.0, 2.0]]), requires_grad=True)
        out = x.max(axis=1)
        np.testing.assert_allclose(out.numpy(), [5.0, 7.0])
        out.sum().backward()
        np.testing.assert_allclose(x.grad, [[0.0, 1.0], [1.0, 0.0]])


class TestShapeOps:
    def test_reshape_roundtrip_gradient(self):
        x = tensor(np.arange(6.0), requires_grad=True)
        x.reshape(2, 3).sum().backward()
        np.testing.assert_allclose(x.grad, np.ones(6))

    def test_flatten(self):
        x = tensor(np.ones((2, 3, 4)))
        assert x.flatten().shape == (24,)

    def test_transpose_gradient(self):
        x = tensor(np.arange(6.0).reshape(2, 3), requires_grad=True)
        x.transpose().sum().backward()
        np.testing.assert_allclose(x.grad, np.ones((2, 3)))

    def test_transpose_with_axes(self):
        x = tensor(np.arange(24.0).reshape(2, 3, 4), requires_grad=True)
        out = x.transpose(0, 2, 1)
        assert out.shape == (2, 4, 3)
        out.sum().backward()
        assert x.grad.shape == (2, 3, 4)

    def test_getitem_gradient_scatters(self):
        x = tensor(np.arange(5.0), requires_grad=True)
        x[1:4].sum().backward()
        np.testing.assert_allclose(x.grad, [0.0, 1.0, 1.0, 1.0, 0.0])

    def test_getitem_fancy_indexing(self):
        x = tensor(np.arange(12.0).reshape(3, 4), requires_grad=True)
        out = x[np.array([0, 2]), np.array([1, 3])]
        np.testing.assert_allclose(out.numpy(), [1.0, 11.0])
        out.sum().backward()
        assert x.grad[0, 1] == 1.0 and x.grad[2, 3] == 1.0
        assert x.grad.sum() == 2.0


class TestSoftmax:
    def test_softmax_sums_to_one(self):
        x = tensor(np.random.default_rng(0).normal(size=(4, 6)))
        probs = x.softmax(axis=-1).numpy()
        np.testing.assert_allclose(probs.sum(axis=-1), np.ones(4), atol=1e-12)
        assert np.all(probs >= 0)

    def test_softmax_stability_with_large_logits(self):
        x = tensor([[1000.0, 1000.0, 999.0]])
        probs = x.softmax().numpy()
        assert np.all(np.isfinite(probs))
        np.testing.assert_allclose(probs.sum(), 1.0)

    def test_log_softmax_matches_log_of_softmax(self):
        data = np.random.default_rng(1).normal(size=(3, 5))
        x = tensor(data)
        np.testing.assert_allclose(x.log_softmax().numpy(),
                                   np.log(x.softmax().numpy()), atol=1e-10)

    def test_softmax_gradient_matches_numerical(self):
        data = np.random.default_rng(2).normal(size=(2, 4))
        x = tensor(data.copy(), requires_grad=True)
        weights = np.random.default_rng(3).normal(size=(2, 4))
        (x.softmax() * tensor(weights)).sum().backward()

        def objective(arr):
            shifted = arr - arr.max(axis=-1, keepdims=True)
            probs = np.exp(shifted) / np.exp(shifted).sum(axis=-1, keepdims=True)
            return float((probs * weights).sum())

        numerical = numerical_gradient(objective, data.copy())
        np.testing.assert_allclose(x.grad, numerical, atol=1e-5)

    def test_log_softmax_gradient_matches_numerical(self):
        data = np.random.default_rng(4).normal(size=(2, 3))
        x = tensor(data.copy(), requires_grad=True)
        x.log_softmax().sum().backward()

        def objective(arr):
            shifted = arr - arr.max(axis=-1, keepdims=True)
            log_probs = shifted - np.log(np.exp(shifted).sum(axis=-1, keepdims=True))
            return float(log_probs.sum())

        numerical = numerical_gradient(objective, data.copy())
        np.testing.assert_allclose(x.grad, numerical, atol=1e-5)


class TestConcatenateStack:
    def test_concatenate_forward_and_gradient(self):
        a = tensor(np.ones((2, 3)), requires_grad=True)
        b = tensor(np.full((2, 2), 2.0), requires_grad=True)
        out = concatenate([a, b], axis=1)
        assert out.shape == (2, 5)
        out.sum().backward()
        np.testing.assert_allclose(a.grad, np.ones((2, 3)))
        np.testing.assert_allclose(b.grad, np.ones((2, 2)))

    def test_stack_forward_and_gradient(self):
        a = tensor([1.0, 2.0], requires_grad=True)
        b = tensor([3.0, 4.0], requires_grad=True)
        out = stack([a, b], axis=0)
        assert out.shape == (2, 2)
        (out * tensor([[1.0, 2.0], [3.0, 4.0]])).sum().backward()
        np.testing.assert_allclose(a.grad, [1.0, 2.0])
        np.testing.assert_allclose(b.grad, [3.0, 4.0])


class TestGraphBehaviour:
    def test_gradient_accumulates_when_tensor_reused(self):
        x = tensor([2.0], requires_grad=True)
        y = x * 3 + x * 4
        y.sum().backward()
        np.testing.assert_allclose(x.grad, [7.0])

    def test_zero_grad_clears(self):
        x = tensor([2.0], requires_grad=True)
        (x * 2).sum().backward()
        assert x.grad is not None
        x.zero_grad()
        assert x.grad is None

    def test_no_grad_context_disables_tracking(self):
        x = tensor([1.0], requires_grad=True)
        with no_grad():
            y = x * 5
        assert not y.requires_grad

    def test_no_grad_restores_state(self):
        assert nn.is_grad_enabled()
        with no_grad():
            assert not nn.is_grad_enabled()
        assert nn.is_grad_enabled()

    def test_deep_chain_backward(self):
        x = tensor([1.0], requires_grad=True)
        y = x
        for _ in range(200):
            y = y * 1.01
        y.sum().backward()
        assert x.grad is not None
        assert x.grad[0] == pytest.approx(1.01 ** 200, rel=1e-6)

    def test_diamond_graph_gradient(self):
        x = tensor([3.0], requires_grad=True)
        a = x * 2
        b = x * 5
        (a * b).sum().backward()
        # d/dx (2x * 5x) = 20x = 60
        np.testing.assert_allclose(x.grad, [60.0])
