"""Tests for the original state representation and actor-critic architectures."""

import numpy as np
import pytest

from repro import nn
from repro.abr import (
    GenericActorCritic,
    HISTORY_LENGTH,
    ORIGINAL_NETWORK_SOURCE,
    ORIGINAL_STATE_SOURCE,
    PensieveNetwork,
    StateFunction,
    original_network_builder,
    original_state_function,
)


class TestOriginalState:
    def test_shape_is_6_by_history(self, sample_observation):
        state = StateFunction.original()(sample_observation)
        assert state.shape == (6, HISTORY_LENGTH)

    def test_rows_are_normalized(self, sample_observation):
        state = StateFunction.original()(sample_observation)
        assert np.abs(state).max() < 100.0

    def test_bitrate_row_normalized_by_top_bitrate(self, sample_observation):
        state = original_state_function(
            sample_observation.bitrate_kbps_history,
            sample_observation.throughput_mbps_history,
            sample_observation.download_time_s_history,
            sample_observation.buffer_s_history,
            sample_observation.next_chunk_sizes_bytes,
            sample_observation.remaining_chunks,
            sample_observation.total_chunks,
            sample_observation.bitrate_ladder_kbps,
        )
        expected = (sample_observation.bitrate_kbps_history
                    / sample_observation.bitrate_ladder_kbps[-1])
        np.testing.assert_allclose(state[0], expected)

    def test_remaining_chunks_row_constant(self, sample_observation):
        state = StateFunction.original()(sample_observation)
        assert np.all(state[5] == state[5][0])
        assert 0.0 <= state[5][0] <= 1.0

    def test_next_sizes_in_megabytes(self, sample_observation):
        state = StateFunction.original()(sample_observation)
        sizes_mb = sample_observation.next_chunk_sizes_bytes / 1e6
        np.testing.assert_allclose(state[4, :len(sizes_mb)], sizes_mb)

    def test_source_string_is_executable(self):
        namespace = {}
        exec(ORIGINAL_STATE_SOURCE, namespace)  # noqa: S102 - test fixture
        assert callable(namespace["state_func"])


class TestStateFunctionWrapper:
    def test_rejects_empty_output(self, sample_observation):
        wrapper = StateFunction(lambda *args: np.array([]), name="empty")
        with pytest.raises(ValueError):
            wrapper(sample_observation)

    def test_rejects_3d_output(self, sample_observation):
        wrapper = StateFunction(lambda *args: np.zeros((2, 2, 2)), name="3d")
        with pytest.raises(ValueError):
            wrapper(sample_observation)

    def test_rejects_non_finite(self, sample_observation):
        wrapper = StateFunction(lambda *args: np.array([np.nan]), name="nan")
        with pytest.raises(ValueError):
            wrapper(sample_observation)

    def test_rejects_shape_change(self, sample_observation):
        calls = {"n": 0}

        def flaky(*args):
            calls["n"] += 1
            return np.zeros(3) if calls["n"] == 1 else np.zeros(4)

        wrapper = StateFunction(flaky, name="flaky")
        wrapper(sample_observation)
        with pytest.raises(ValueError):
            wrapper(sample_observation)

    def test_probe_and_reset_shape(self, sample_observation):
        wrapper = StateFunction.original()
        assert wrapper.shape is None
        shape = wrapper.probe_shape(sample_observation)
        assert shape == (6, HISTORY_LENGTH)
        assert wrapper.shape == shape
        wrapper.reset_shape()
        assert wrapper.shape is None

    def test_requires_callable(self):
        with pytest.raises(TypeError):
            StateFunction("not callable")


class TestPensieveNetwork:
    def test_forward_shapes(self):
        net = PensieveNetwork((6, 8), 6, rng=np.random.default_rng(0))
        states = nn.tensor(np.random.default_rng(0).normal(size=(3, 6, 8)))
        logits, value = net.forward(states)
        assert logits.shape == (3, 6)
        assert value.shape == (3,)

    def test_policy_sums_to_one(self):
        net = PensieveNetwork((6, 8), 6, rng=np.random.default_rng(0))
        states = nn.tensor(np.random.default_rng(1).normal(size=(4, 6, 8)))
        probs = net.policy(states).numpy()
        np.testing.assert_allclose(probs.sum(axis=1), np.ones(4), atol=1e-10)

    def test_single_state_without_batch_dim(self):
        net = PensieveNetwork((6, 8), 6, rng=np.random.default_rng(0))
        logits, value = net.forward(nn.tensor(np.zeros((6, 8))))
        assert logits.shape == (1, 6)
        assert value.shape == (1,)

    def test_flat_state_supported(self):
        net = PensieveNetwork((10,), 4, rng=np.random.default_rng(0))
        logits, value = net.forward(nn.tensor(np.zeros((2, 10))))
        assert logits.shape == (2, 4)

    def test_short_history_uses_scalar_branches(self):
        net = PensieveNetwork((5, 2), 4, rng=np.random.default_rng(0))
        assert net.temporal_rows == ()
        logits, _ = net.forward(nn.tensor(np.zeros((1, 5, 2))))
        assert logits.shape == (1, 4)

    def test_gradients_reach_all_parameters(self):
        net = PensieveNetwork((6, 8), 6, rng=np.random.default_rng(0))
        states = nn.tensor(np.random.default_rng(2).normal(size=(2, 6, 8)))
        logits, value = net.forward(states)
        (logits.sum() + value.sum()).backward()
        with_grad = sum(1 for p in net.parameters() if p.grad is not None)
        assert with_grad == len(net.parameters())


class TestGenericActorCritic:
    @pytest.mark.parametrize("encoder", ["flatten", "conv", "rnn", "gru", "lstm"])
    def test_encoders_forward(self, encoder):
        net = GenericActorCritic((4, 8), 6, encoder=encoder,
                                 rng=np.random.default_rng(0))
        logits, value = net.forward(nn.tensor(np.random.default_rng(0).normal(size=(3, 4, 8))))
        assert logits.shape == (3, 6)
        assert value.shape == (3,)

    def test_flat_state_forces_flatten_encoder(self):
        net = GenericActorCritic((9,), 4, encoder="lstm",
                                 rng=np.random.default_rng(0))
        assert net.encoder_kind == "flatten"
        logits, _ = net.forward(nn.tensor(np.zeros((2, 9))))
        assert logits.shape == (2, 4)

    def test_shared_trunk_reduces_parameters(self):
        shared = GenericActorCritic((6, 8), 6, share_trunk=True,
                                    rng=np.random.default_rng(0))
        separate = GenericActorCritic((6, 8), 6, share_trunk=False,
                                      rng=np.random.default_rng(0))
        assert shared.num_parameters() < separate.num_parameters()

    def test_unknown_encoder_raises(self):
        with pytest.raises(ValueError):
            GenericActorCritic((6, 8), 6, encoder="transformer")

    def test_unbatched_input(self):
        net = GenericActorCritic((3, 8), 5, rng=np.random.default_rng(0))
        logits, value = net.forward(nn.tensor(np.zeros((3, 8))))
        assert logits.shape == (1, 5)


class TestOriginalNetworkBuilder:
    def test_canonical_shape_builds_pensieve_architecture(self):
        net = original_network_builder((6, 8), 6, rng=np.random.default_rng(0))
        assert isinstance(net, PensieveNetwork)

    def test_other_2d_shapes_still_pensieve_style(self):
        net = original_network_builder((9, 8), 6, rng=np.random.default_rng(0))
        assert isinstance(net, PensieveNetwork)

    def test_flat_shape_falls_back_to_generic(self):
        net = original_network_builder((15,), 6, rng=np.random.default_rng(0))
        assert isinstance(net, GenericActorCritic)

    def test_original_network_source_is_nonempty(self):
        assert "build_network" in ORIGINAL_NETWORK_SOURCE
