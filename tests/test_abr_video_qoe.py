"""Tests for the video model and the QoE metrics."""

import numpy as np
import pytest

from repro.abr import (
    CHUNK_DURATION_S,
    HDQoE,
    HIGH_LADDER_KBPS,
    LinearQoE,
    LogQoE,
    STANDARD_LADDER_KBPS,
    Video,
    make_qoe,
    synthetic_video,
)


class TestVideo:
    def test_ladders_match_paper(self):
        assert STANDARD_LADDER_KBPS == (300, 750, 1200, 1850, 2850, 4300)
        assert HIGH_LADDER_KBPS == (1850, 2850, 4300, 12000, 24000, 53000)

    def test_synthetic_video_shapes(self, small_video):
        assert small_video.num_chunks == 12
        assert small_video.num_bitrates == 6
        assert small_video.chunk_sizes_bytes.shape == (12, 6)
        assert small_video.duration_s == pytest.approx(12 * CHUNK_DURATION_S)

    def test_chunk_sizes_scale_with_bitrate(self, small_video):
        sizes = small_video.chunk_sizes_bytes
        # Within every chunk the higher rendition must be larger on average.
        mean_per_bitrate = sizes.mean(axis=0)
        assert np.all(np.diff(mean_per_bitrate) > 0)

    def test_chunk_sizes_near_nominal(self):
        video = synthetic_video("standard", num_chunks=200, vbr_sigma=0.1, seed=0)
        nominal = np.asarray(STANDARD_LADDER_KBPS) * 1000 * CHUNK_DURATION_S / 8.0
        measured = video.chunk_sizes_bytes.mean(axis=0)
        np.testing.assert_allclose(measured, nominal, rtol=0.15)

    def test_deterministic_by_seed(self):
        a = synthetic_video("standard", seed=5)
        b = synthetic_video("standard", seed=5)
        np.testing.assert_array_equal(a.chunk_sizes_bytes, b.chunk_sizes_bytes)

    def test_custom_ladder(self):
        video = synthetic_video([100, 200, 400], num_chunks=4, seed=0)
        assert video.bitrates_kbps == (100, 200, 400)

    def test_unknown_ladder_name(self):
        with pytest.raises(KeyError):
            synthetic_video("ultra")

    def test_chunk_size_accessors(self, small_video):
        size = small_video.chunk_size(0, 0)
        assert size > 0
        sizes = small_video.next_chunk_sizes(3)
        assert sizes.shape == (6,)
        with pytest.raises(IndexError):
            small_video.chunk_size(100, 0)
        with pytest.raises(IndexError):
            small_video.chunk_size(0, 100)
        with pytest.raises(IndexError):
            small_video.next_chunk_sizes(-1)

    def test_video_validation(self):
        with pytest.raises(ValueError):
            Video([300, 200], np.ones((4, 2)))  # descending ladder
        with pytest.raises(ValueError):
            Video([300, 750], np.ones((4, 3)))  # mismatched columns
        with pytest.raises(ValueError):
            Video([300, 750], np.zeros((4, 2)))  # non-positive sizes
        with pytest.raises(ValueError):
            Video([300, 750], np.ones(4))  # not 2-D
        with pytest.raises(ValueError):
            Video([300, 750], np.ones((4, 2)), chunk_duration_s=0.0)
        with pytest.raises(ValueError):
            synthetic_video("standard", num_chunks=0)

    def test_bitrates_mbps(self, small_video):
        np.testing.assert_allclose(small_video.bitrates_mbps,
                                   np.array(STANDARD_LADDER_KBPS) / 1000.0)


class TestLinearQoE:
    def test_reward_equals_bitrate_when_clean(self):
        qoe = LinearQoE(STANDARD_LADDER_KBPS)
        assert qoe.chunk_reward(2, 0.0, 2) == pytest.approx(1.2)

    def test_first_chunk_has_no_smoothness_penalty(self):
        qoe = LinearQoE(STANDARD_LADDER_KBPS)
        assert qoe.chunk_reward(5, 0.0, None) == pytest.approx(4.3)

    def test_rebuffer_penalty_defaults_to_top_bitrate(self):
        qoe = LinearQoE(STANDARD_LADDER_KBPS)
        assert qoe.rebuffer_penalty == pytest.approx(4.3)
        reward = qoe.chunk_reward(0, 1.0, 0)
        assert reward == pytest.approx(0.3 - 4.3)

    def test_smoothness_penalty(self):
        qoe = LinearQoE(STANDARD_LADDER_KBPS)
        reward = qoe.chunk_reward(5, 0.0, 0)
        assert reward == pytest.approx(4.3 - abs(4.3 - 0.3))

    def test_high_ladder_penalty_scale(self):
        qoe = LinearQoE(HIGH_LADDER_KBPS)
        assert qoe.rebuffer_penalty == pytest.approx(53.0)

    def test_session_reward_mean(self):
        qoe = LinearQoE(STANDARD_LADDER_KBPS)
        score = qoe.session_reward([0, 0, 0], [0.0, 0.0, 0.0])
        assert score == pytest.approx(0.3)

    def test_session_reward_validation(self):
        qoe = LinearQoE(STANDARD_LADDER_KBPS)
        with pytest.raises(ValueError):
            qoe.session_reward([0, 1], [0.0])
        assert qoe.session_reward([], []) == 0.0

    def test_invalid_inputs(self):
        qoe = LinearQoE(STANDARD_LADDER_KBPS)
        with pytest.raises(IndexError):
            qoe.chunk_reward(10, 0.0, None)
        with pytest.raises(ValueError):
            qoe.chunk_reward(0, -1.0, None)
        with pytest.raises(ValueError):
            LinearQoE([])

    def test_detail_breakdown_sums(self):
        qoe = LinearQoE(STANDARD_LADDER_KBPS)
        detail = qoe.chunk_reward_detail(3, 0.5, 1)
        assert detail.total == pytest.approx(
            detail.quality - detail.rebuffer_penalty - detail.smoothness_penalty)


class TestOtherQoE:
    def test_log_qoe_zero_at_lowest(self):
        qoe = LogQoE(STANDARD_LADDER_KBPS)
        assert qoe.quality(0) == pytest.approx(0.0)
        assert qoe.quality(5) == pytest.approx(np.log(4300 / 300))

    def test_hd_qoe_monotone(self):
        qoe = HDQoE(STANDARD_LADDER_KBPS)
        scores = [qoe.quality(i) for i in range(6)]
        assert scores == sorted(scores)
        assert qoe.rebuffer_penalty == pytest.approx(scores[-1])

    def test_make_qoe_registry(self):
        assert isinstance(make_qoe("lin", STANDARD_LADDER_KBPS), LinearQoE)
        assert isinstance(make_qoe("log", STANDARD_LADDER_KBPS), LogQoE)
        assert isinstance(make_qoe("hd", STANDARD_LADDER_KBPS), HDQoE)
        with pytest.raises(KeyError):
            make_qoe("vmaf", STANDARD_LADDER_KBPS)

    def test_custom_penalties(self):
        qoe = LinearQoE(STANDARD_LADDER_KBPS, rebuffer_penalty=10.0,
                        smoothness_penalty=2.0)
        assert qoe.rebuffer_penalty == 10.0
        reward = qoe.chunk_reward(1, 0.0, 0)
        assert reward == pytest.approx(0.75 - 2.0 * (0.75 - 0.3))
