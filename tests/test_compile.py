"""Equivalence suite for the fused-kernel compiler (`repro.nn.compile`).

The compiler's contract mirrors the multi-seed engine's: compiled kernels are
*indistinguishable* from the autograd reference — gradients match
``loss.backward()`` to <= 1e-9 in float32 and float64 across the whole
design-space vocabulary, compiled rollout decisions are identical to the
graph path's, and a generated design trained through the compiled lockstep
engine (including inside a scheduler worker) reproduces the serial graph
path's trajectories action for action.  Relaxed numerics (``--numerics
fast``) is exempt from bit-exactness and instead pinned by statistical
equivalence.
"""

import dataclasses

import numpy as np
import pytest

from repro import nn
from repro.abr.networks import (GenericActorCritic, PensieveNetwork,
                                build_seed_stack, seed_stack_compatible)
from repro.analysis.experiments import ExperimentScale, build_environment
from repro.core.codegen import load_network_builder
from repro.core.design import Design, DesignKind
from repro.core.evaluation import DesignTrainer, EvaluationConfig
from repro.core.parallel import ParallelConfig
from repro.core.scheduler import CampaignScheduler, EvaluationJob
from repro.llm.design_space import (NETWORK_ENCODERS, NetworkDesignSpec,
                                    NetworkDesignSpace)
from repro.nn.compile import (CompiledSeedStack, CompiledSequence, plan_for)
from repro.rl.a2c import A2CConfig, MultiSeedA2CTrainer

SPECS_PER_FAMILY = 20


@pytest.fixture
def engine_guard():
    """Restore every engine toggle a test may flip."""
    dtype = nn.get_default_dtype()
    compiled = nn.compilation_enabled()
    numerics = nn.get_numerics()
    yield
    nn.set_default_dtype(dtype)
    nn.set_compilation(compiled)
    nn.set_numerics(numerics)


@pytest.fixture(scope="module")
def env_setup():
    return build_environment("fcc", ExperimentScale(dataset_scale=0.03,
                                                    num_chunks=10, seed=0))


def _sample_specs(family, count, rng):
    """``count`` random design-space specs constrained to one encoder family."""
    space = NetworkDesignSpace()
    specs = []
    while len(specs) < count:
        spec = space.sample_spec(rng)
        specs.append(dataclasses.replace(
            spec, encoder=family, defect=None,
            # Bound the hidden size so the 240-network sweep stays fast; the
            # kernels are size-agnostic.
            hidden_size=min(spec.hidden_size, 96)))
    return specs


def _build_from_spec(spec, seed):
    """Render the spec to code and build it through the real codegen path."""
    builder = load_network_builder(NetworkDesignSpace().render(spec))
    return builder((6, 8), 5, rng=np.random.default_rng(seed))


def _autograd_reference(network, states, dlogits, dvalues):
    """Graph forward/backward with injected output gradients."""
    t = nn.tensor(states)
    logits, values = network.forward(t)
    for p in network.parameters():
        p.zero_grad()
    loss = ((logits * nn.tensor(dlogits)).sum()
            + (values * nn.tensor(dvalues)).sum())
    loss.backward()
    grads = [p.grad.copy() for p in network.parameters()]
    for p in network.parameters():
        p.zero_grad()
    return logits.numpy().copy(), values.numpy().copy(), grads


# --------------------------------------------------------------------------- #
# Property test (satellite): >= 20 random specs per encoder family, compiled
# gradients match autograd in both dtypes.
# --------------------------------------------------------------------------- #
@pytest.mark.parametrize("family", NETWORK_ENCODERS)
def test_random_design_specs_compile_and_match_autograd(family, engine_guard):
    rng = np.random.default_rng(NETWORK_ENCODERS.index(family) + 1)
    data_rng = np.random.default_rng(7)
    specs = _sample_specs(family, SPECS_PER_FAMILY, rng)
    for index, spec in enumerate(specs):
        dtype = ("float64", "float32")[index % 2]
        nn.set_default_dtype(dtype)
        network = _build_from_spec(spec, seed=index)
        if not network.supports_fused_update():
            # pensieve_conv designs with non-ReLU activations keep the graph
            # path (the hand fold requires ReLU); everything the compiler
            # owns must lower.
            assert isinstance(network, PensieveNetwork), spec
            continue
        states = data_rng.normal(size=(5, 6, 8)).astype(dtype)
        dlogits = data_rng.normal(size=(5, 5)).astype(dtype)
        dvalues = data_rng.normal(size=(5,)).astype(dtype)
        ref_logits, ref_values, ref_grads = _autograd_reference(
            network, states, dlogits, dvalues)
        cache, logits, values = network.fused_forward(states)
        network.fused_backward(cache, dlogits, dvalues)
        # The Pensieve fold groups the branch-bank GEMMs differently from
        # the per-branch graph (same math, different operand grouping), so
        # its float32 agreement is loose; the compiled generic kernels
        # mirror the graph op for op and must hit 1e-9 in both dtypes.
        tol = (2e-4 if isinstance(network, PensieveNetwork)
               and dtype == "float32" else 1e-9)
        assert np.abs(logits - ref_logits).max() <= tol, (spec, dtype)
        assert np.abs(values - ref_values).max() <= tol, (spec, dtype)
        for p, g in zip(network.parameters(), ref_grads):
            assert np.abs(p.grad - g).max() <= tol, (spec, dtype, p.name)
        # Compiled inference agrees with the graph forward's probabilities.
        probs_graph = network._policy_probs_graph(states)
        assert np.abs(network.policy_probs(states) - probs_graph).max() \
            <= tol


# --------------------------------------------------------------------------- #
# Stacked kernels: per-seed slices equal the serial compiled kernels.
# --------------------------------------------------------------------------- #
@pytest.mark.parametrize("dtype", ["float64", "float32"])
@pytest.mark.parametrize("encoder", ["flatten", "conv", "rnn", "gru", "lstm"])
def test_compiled_seed_stack_matches_serial_kernels(encoder, dtype,
                                                    engine_guard):
    nn.set_default_dtype(dtype)
    nets = [GenericActorCritic((6, 8), 5, hidden_sizes=(24, 24),
                               encoder=encoder,
                               rng=np.random.default_rng(10 + s))
            for s in range(3)]
    assert CompiledSeedStack.compatible(nets)
    rng = np.random.default_rng(1)
    states = rng.normal(size=(3, 6, 6, 8)).astype(dtype)
    dlogits = rng.normal(size=(3, 6, 5)).astype(dtype)
    dvalues = rng.normal(size=(3, 6)).astype(dtype)
    serial = []
    for s, net in enumerate(nets):
        cache, logits, values = net.fused_forward(states[s])
        for p in net.parameters():
            p.zero_grad()
        net.fused_backward(cache, dlogits[s], dvalues[s])
        serial.append((logits.copy(), values.copy(),
                       [p.grad.copy() for p in net.parameters()],
                       net.policy_probs(states[s]).copy()))
    stack = CompiledSeedStack(nets)
    cache, logits, values = stack.fused_forward(states)
    stack.fused_backward(cache, dlogits, dvalues)
    for s, net in enumerate(nets):
        ref_logits, ref_values, ref_grads, ref_probs = serial[s]
        assert np.array_equal(logits[s], ref_logits)
        assert np.array_equal(values[s], ref_values)
        for p0, g in zip(nets[0].parameters(), ref_grads):
            assert np.array_equal(stack.stacked_of(p0).grad[s], g)
        forward = stack.seed_policy_forward(s, batch=6)
        assert np.array_equal(forward.probs(states[s]), ref_probs)
        assert np.array_equal(stack.policy_probs(states)[s], ref_probs)
    # The per-seed networks' weights alias the stacked arrays.
    for s, net in enumerate(nets):
        for p, sp in zip(net.parameters(), stack.parameters()):
            assert np.shares_memory(p.data, sp.data[s])


# --------------------------------------------------------------------------- #
# Acceptance contract: compiled lockstep == serial graph path, trajectories
# identical, including inside a scheduler worker.
# --------------------------------------------------------------------------- #
def _generated_design(encoder, activation="relu", hidden=32):
    spec = NetworkDesignSpec(hidden_size=hidden, activation=activation,
                             encoder=encoder)
    return Design(design_id=f"gen-{encoder}", kind=DesignKind.NETWORK,
                  code=NetworkDesignSpace().render(spec))


def _tiny_trainer(setup, num_seeds=2, lockstep=True):
    config = EvaluationConfig(train_epochs=6, checkpoint_interval=3,
                              last_k_checkpoints=2, num_seeds=num_seeds,
                              a2c=A2CConfig(entropy_anneal_epochs=4,
                                            critic_lr=3e-3),
                              lockstep_training=lockstep)
    return DesignTrainer(setup.video, setup.train_traces, setup.test_traces,
                         config=config, qoe=setup.qoe)


@pytest.mark.parametrize("dtype", ["float64", "float32"])
@pytest.mark.parametrize("encoder", ["flatten", "gru"])
def test_compiled_lockstep_matches_serial_graph_path(env_setup, encoder,
                                                     dtype, engine_guard):
    nn.set_default_dtype(dtype)
    trainer = _tiny_trainer(env_setup)
    design = _generated_design(encoder)
    lock_runs = trainer.run_seeds(None, design, [0, 1])
    nn.set_compilation(False)
    graph_runs = [trainer.run(None, design, seed=s) for s in (0, 1)]
    for lock, graph in zip(lock_runs, graph_runs):
        # Identical rewards chunk for chunk means identical trace choices
        # and action sequences — rewards are chaotic in the actions.
        assert lock.reward_history == graph.reward_history
        assert lock.checkpoint_epochs == graph.checkpoint_epochs
        assert np.allclose(lock.checkpoint_scores, graph.checkpoint_scores,
                           atol=1e-9, rtol=0.0)


def test_generated_design_through_scheduler_worker(env_setup, engine_guard):
    """The ISSUE's acceptance path: generated design, lockstep, worker pool."""
    trainer = _tiny_trainer(env_setup)
    design = _generated_design("lstm")
    job = EvaluationJob(trainer=trainer, state_design=None,
                        network_design=design, seeds=(0, 1),
                        environment="fcc")
    # Compiled designs stay whole under fan-out (lockstep inside the worker).
    scheduler = CampaignScheduler(ParallelConfig(max_workers=2))
    assert not scheduler._splits_without_cost(job)
    result = scheduler.run([job])[0]
    nn.set_compilation(False)
    reference = [trainer.run(None, design, seed=s) for s in (0, 1)]
    for run, ref in zip(result.runs, reference):
        assert run.reward_history == ref.reward_history
        assert np.allclose(run.checkpoint_scores, ref.checkpoint_scores,
                           atol=1e-9, rtol=0.0)
    # Without the compiler the same job splits per seed under fan-out.
    assert CampaignScheduler(ParallelConfig(max_workers=2)) \
        ._splits_without_cost(job)


def test_multi_seed_supports_compiled_generated_networks(env_setup):
    nets = [GenericActorCritic((6, 8), 4, hidden_sizes=(16, 16),
                               rng=np.random.default_rng(s))
            for s in range(2)]
    assert MultiSeedA2CTrainer.supports(nets)
    assert seed_stack_compatible(nets)
    assert type(build_seed_stack(nets)).__name__ == "CompiledSeedStack"
    # Mixed architectures still refuse.
    pensieve = PensieveNetwork((6, 8), 4, rng=np.random.default_rng(0))
    assert not MultiSeedA2CTrainer.supports([nets[0], pensieve])


# --------------------------------------------------------------------------- #
# Degradation: what the planner cannot lower keeps the graph path, logged.
# --------------------------------------------------------------------------- #
class _ExoticNetwork(GenericActorCritic):
    """Codegen-style subclass whose forward the planner cannot verify."""

    def forward(self, states):  # pragma: no cover - structure-only
        return super().forward(states)


def test_unlowerable_architectures_degrade_with_logged_reason(caplog,
                                                              engine_guard):
    import logging

    exotic = _ExoticNetwork((6, 8), 4, hidden_sizes=(8,),
                            rng=np.random.default_rng(0))
    with caplog.at_level(logging.INFO, logger="repro.nn.compile"):
        assert plan_for(exotic) is None
    assert exotic.supports_fused_update() is False
    assert not CompiledSeedStack.compatible([exotic])
    # Custom callable activations refuse too.
    custom = GenericActorCritic((6, 8), 4, hidden_sizes=(8,),
                                activation=lambda x: x.relu(),
                                rng=np.random.default_rng(0))
    assert plan_for(custom) is None
    # And the escape hatch turns the compiler off globally.
    nn.set_compilation(False)
    fresh = GenericActorCritic((6, 8), 4, hidden_sizes=(8,),
                               rng=np.random.default_rng(0))
    assert fresh.supports_fused_update() is False
    probs = fresh.policy_probs(np.zeros((2, 6, 8)))
    assert probs.shape == (2, 4)


def test_compile_cache_not_pickled(env_setup):
    import pickle

    net = GenericActorCritic((6, 8), 4, hidden_sizes=(8,),
                             rng=np.random.default_rng(0))
    assert net.compiled_plan() is not None
    clone = pickle.loads(pickle.dumps(net))
    assert "_compile_cache" not in clone.__dict__
    # The clone recompiles on demand and still agrees.
    states = np.random.default_rng(0).normal(size=(3, 6, 8))
    assert np.allclose(clone.policy_probs(states), net.policy_probs(states),
                       atol=1e-12, rtol=0.0)


# --------------------------------------------------------------------------- #
# Dropout / LayerNorm semantics (satellite).
# --------------------------------------------------------------------------- #
def test_dropout_layernorm_eval_mode_preserved_under_batched_evaluation():
    module = nn.Sequential(
        nn.Dense(8, 16, activation="relu", rng=np.random.default_rng(0)),
        nn.LayerNorm(16),
        nn.Dropout(0.5, rng=np.random.default_rng(1)),
        nn.Dense(16, 4, activation="tanh", rng=np.random.default_rng(2)),
    )
    module.eval()
    compiled = CompiledSequence(module)
    x = np.random.default_rng(3).normal(size=(7, 8))
    with nn.no_grad():
        graph = module(nn.tensor(x)).numpy()
    # Eval-mode dropout is the identity, LayerNorm normalizes identically,
    # and the whole batch goes through one fused chain.
    assert np.abs(compiled.infer(x) - graph).max() <= 1e-12


def test_training_mode_dropout_consumes_the_layer_rng_like_the_graph():
    def build():
        return nn.Sequential(
            nn.Dense(6, 12, activation="relu", rng=np.random.default_rng(0)),
            nn.Dropout(0.4, rng=np.random.default_rng(42)),
            nn.Dense(12, 3, rng=np.random.default_rng(1)),
        )

    x = np.random.default_rng(5).normal(size=(4, 6))
    graph_module = build()
    graph_out = graph_module(nn.tensor(x)).numpy()
    compiled_module = build()
    compiled = CompiledSequence(compiled_module)
    _, compiled_out = compiled.forward(x)
    assert np.abs(compiled_out - graph_out).max() <= 1e-12
    # Identical RNG streams were consumed: a second draw still agrees.
    assert np.abs(compiled.forward(x)[1]
                  - graph_module(nn.tensor(x)).numpy()).max() <= 1e-12


def test_active_dropout_keeps_graph_inference_rng_stream():
    """Training-mode dropout must not take the compiled inference path.

    The compiled chain runs only the actor tower while the graph reference
    runs the full forward (critic included), so with active dropout the two
    would consume different RNG-stream lengths per decision.  Such networks
    route inference back to the graph; twin networks with twin RNGs must
    therefore produce identical probability sequences with the compiler on
    and off.
    """
    def build():
        net = GenericActorCritic((6, 8), 4, hidden_sizes=(12,),
                                 rng=np.random.default_rng(0))
        net.actor_trunk.append(nn.Dropout(0.3, rng=np.random.default_rng(7)))
        net.critic_trunk.append(nn.Dropout(0.3, rng=np.random.default_rng(8)))
        return net

    states = np.random.default_rng(1).normal(size=(3, 6, 8))
    compiled_net = build()
    assert compiled_net.compiled_plan() is not None
    assert compiled_net.compiled_plan().has_active_dropout()
    with nn.no_grad():
        reference_net = build()
        # Two consecutive decisions: both the values and the RNG stream
        # consumption must match the graph path draw for draw.
        for _ in range(2):
            assert np.array_equal(compiled_net.policy_probs(states),
                                  reference_net._policy_probs_graph(states))
    # In eval mode dropout is inert and the compiled path resumes.
    compiled_net.eval()
    assert not compiled_net.compiled_plan().has_active_dropout()


def test_mid_stack_conv_and_recurrent_propagate_input_gradients():
    module = nn.Sequential(
        nn.Conv1D(6, 8, 3, activation="relu", rng=np.random.default_rng(0)),
        nn.Recurrent(8, 10, cell_type="gru", rng=np.random.default_rng(1)),
        nn.Dense(10, 4, activation="elu", rng=np.random.default_rng(2)),
    )
    compiled = CompiledSequence(module)
    x = np.random.default_rng(3).normal(size=(5, 6, 8))
    t = nn.tensor(x, requires_grad=True)
    out = module(t)
    dy = np.random.default_rng(4).normal(size=out.shape)
    (out * nn.tensor(dy)).sum().backward()
    ref_grads = [p.grad.copy() for p in module.parameters()]
    caches, compiled_out = compiled.forward(x)
    assert np.abs(compiled_out - out.numpy()).max() <= 1e-9
    dx = compiled.backward(caches, dy, need_input_grad=True)
    assert np.abs(dx - t.grad).max() <= 1e-9
    for p, g in zip(module.parameters(), ref_grads):
        assert np.abs(p.grad - g).max() <= 1e-9


# --------------------------------------------------------------------------- #
# Relaxed numerics (satellite): fast mode is opt-in, statistically equivalent.
# --------------------------------------------------------------------------- #
def test_exact_numerics_is_the_default():
    assert nn.get_numerics() == "exact"
    with pytest.raises(ValueError):
        nn.set_numerics("sloppy")


def test_fast_numerics_gradients_statistically_equivalent(engine_guard):
    rng = np.random.default_rng(0)
    states = rng.normal(size=(16, 6, 8))
    dlogits = rng.normal(size=(16, 6))
    dvalues = rng.normal(size=(16,))

    def grads_with(mode, network):
        nn.set_numerics(mode)
        cache, _, _ = network.fused_forward(states)
        for p in network.parameters():
            p.zero_grad()
        network.fused_backward(cache, dlogits, dvalues)
        return [p.grad.copy() for p in network.parameters()]

    for network in (PensieveNetwork((6, 8), 6, rng=np.random.default_rng(1)),
                    GenericActorCritic((6, 8), 6, encoder="conv",
                                       hidden_sizes=(24, 24),
                                       rng=np.random.default_rng(2))):
        exact = grads_with("exact", network)
        fast = grads_with("fast", network)
        for e, f in zip(exact, fast):
            scale = max(float(np.abs(e).max()), 1e-12)
            assert float(np.abs(e - f).max()) / scale <= 1e-10


def test_fast_numerics_scores_within_statistical_bound(env_setup,
                                                       engine_guard):
    trainer = _tiny_trainer(env_setup)
    design = _generated_design("conv")
    exact_runs = trainer.run_seeds(None, design, [0, 1])
    nn.set_numerics("fast")
    fast_runs = trainer.run_seeds(None, design, [0, 1])
    for exact, fast in zip(exact_runs, fast_runs):
        exact_score = np.mean(exact.checkpoint_scores)
        fast_score = np.mean(fast.checkpoint_scores)
        # Statistical-equivalence gate: the re-blocked contractions may
        # diverge at round-off and flip individual sampled actions, but the
        # protocol score must stay in the same band.
        assert abs(exact_score - fast_score) <= 0.5


# --------------------------------------------------------------------------- #
# Scheduler planner dedupe (satellite).
# --------------------------------------------------------------------------- #
def test_identical_jobs_collapse_to_one_execution(env_setup, monkeypatch):
    trainer = _tiny_trainer(env_setup)
    design_a = _generated_design("flatten")
    design_b = Design(design_id="gen-flatten-copy", kind=DesignKind.NETWORK,
                      code=design_a.code)  # same content, different identity
    other = _generated_design("conv")
    executions = []
    original = DesignTrainer.run_seeds

    def counting(self, state_design, network_design, seeds, **kwargs):
        executions.append(network_design.design_id
                          if network_design else "original")
        return original(self, state_design, network_design, seeds, **kwargs)

    monkeypatch.setattr(DesignTrainer, "run_seeds", counting)

    def job(design):
        return EvaluationJob(trainer=trainer, state_design=None,
                             network_design=design, seeds=(0, 1),
                             environment="fcc")

    results = CampaignScheduler().run([job(design_a), job(other),
                                       job(design_b)])
    # Content-identical jobs collapsed: two executions, three results.
    assert len(executions) == 2
    assert results[2].deduplicated and not results[0].deduplicated
    assert results[2].score == results[0].score
    assert results[2].runs == results[0].runs


def test_early_stopping_jobs_never_collapse(env_setup):
    from repro.core.early_stopping import (EarlyStoppingConfig,
                                           RewardTrajectoryClassifier)

    trainer = _tiny_trainer(env_setup)
    classifier = RewardTrajectoryClassifier(
        EarlyStoppingConfig(reward_prefix_length=2, training_epochs=2))
    job = EvaluationJob(trainer=trainer, state_design=None,
                        network_design=None, seeds=(0,),
                        early_stopping=classifier, environment="fcc")
    assert CampaignScheduler._dedupe_key(job) is None


# --------------------------------------------------------------------------- #
# CLI escape hatches.
# --------------------------------------------------------------------------- #
def test_cli_flags_toggle_compiler_and_numerics(engine_guard):
    from repro.cli import _apply_engine_flags, build_parser

    parser = build_parser()
    args = parser.parse_args(["run", "--no-compile", "--numerics", "fast"])
    assert args.no_compile and args.numerics == "fast"
    _apply_engine_flags(args)
    assert not nn.compilation_enabled()
    assert nn.get_numerics() == "fast"
    args = parser.parse_args(["campaign"])
    _apply_engine_flags(args)
    assert nn.compilation_enabled()
    assert nn.get_numerics() == "exact"
