"""Tests for the campaign telemetry layer (`repro.core.telemetry`).

Covers the PR's hard guarantees:

* the disabled hot path is a true no-op — the shared singleton span performs
  zero per-call allocations, so instrumentation can stay in hot loops;
* serial and multi-worker campaign runs produce identical event streams
  modulo timestamps and worker pids (the same order-preserving merge
  contract the scheduler gives results);
* the ``store.*`` counters the scheduler emits agree exactly with the
  result store's own hit/miss/partial-probe/put accounting, so the
  ``repro report`` hit-rate is provably the store's;
* per-checkpoint training metrics ride along with ``TrainingRun`` records
  and survive warm-store replays bit-exactly;
* the kernel compiler reports lowered networks and fallbacks keyed by
  reason;
* events round-trip through JSONL flush/load and render as a well-formed
  Chrome trace, and the ``repro report`` CLI surfaces them.
"""

from __future__ import annotations

import gc
import json
import math
import sys

import numpy as np
import pytest

from repro.abr.networks import GenericActorCritic
from repro.analysis import ExperimentScale
from repro.analysis.experiments import build_environment
from repro.cli import main
from repro.core import (
    CampaignScheduler,
    Design,
    DesignTrainer,
    EvaluationJob,
    ParallelConfig,
    ResultStore,
    telemetry,
)
from repro.nn.compile import plan_for
from repro.rl.a2c import TRAINING_METRIC_NAMES
from repro.llm import StateDesignSpace, StateDesignSpec

TINY = ExperimentScale(train_epochs=6, checkpoint_interval=3,
                       last_k_checkpoints=2, num_seeds=2,
                       dataset_scale=0.02, num_chunks=6)

GOOD_STATE = StateDesignSpace().render(
    StateDesignSpec(extra_features=("buffer_diff",)))


@pytest.fixture(autouse=True)
def telemetry_off():
    """Every test starts and ends with no active sink."""
    telemetry.set_telemetry(None)
    yield
    telemetry.set_telemetry(None)


def _trainer(environment: str = "fcc",
             scale: ExperimentScale = TINY) -> DesignTrainer:
    setup = build_environment(environment, scale)
    return DesignTrainer(setup.video, setup.train_traces, setup.test_traces,
                         config=scale.evaluation_config(), qoe=setup.qoe)


def _job(trainer, state=None, seeds=(0, 1)) -> EvaluationJob:
    return EvaluationJob(trainer=trainer, state_design=state,
                         network_design=None, seeds=seeds,
                         environment="fcc")


def _run_with_sink(jobs, workers=1, store=None):
    """Run ``jobs`` through a fresh scheduler under a fresh in-memory sink."""
    sink = telemetry.Telemetry()
    previous = telemetry.set_telemetry(sink)
    try:
        results = CampaignScheduler(ParallelConfig(max_workers=workers),
                                    store=store).run(jobs)
    finally:
        telemetry.set_telemetry(previous)
    return results, sink.events


def _counter_totals(events):
    totals = {}
    for event in events:
        if event.kind == "counter":
            totals[event.name] = totals.get(event.name, 0.0) + event.value
    return totals


# --------------------------------------------------------------------------- #
# Disabled path: a true no-op.
# --------------------------------------------------------------------------- #
class TestDisabledPath:
    def test_disabled_span_is_a_shared_singleton(self):
        assert not telemetry.enabled()
        assert telemetry.span("a") is telemetry.span("b")
        assert telemetry.span("a") is telemetry._NOOP_SPAN

    def test_disabled_counter_and_series_record_nothing(self):
        telemetry.counter("x")
        telemetry.series("y", 0, 1.0)
        with telemetry.span("z", {"attr": 1}):
            pass
        assert telemetry.get_telemetry() is None

    def test_disabled_span_path_allocates_nothing(self):
        """The hot-loop contract: zero per-call allocations when off."""
        assert not telemetry.enabled()
        span = telemetry.span
        for _ in range(1_000):  # warm caches, intern strings
            with span("hot"):
                pass
        gc.collect()
        before = sys.getallocatedblocks()
        for _ in range(10_000):
            with span("hot"):
                pass
        delta = sys.getallocatedblocks() - before
        assert delta <= 2, f"disabled span path allocated {delta} blocks"

    def test_enable_is_idempotent_and_disable_clears(self, tmp_path):
        first = telemetry.enable(str(tmp_path))
        assert telemetry.enable("somewhere/else") is first
        telemetry.counter("ping")
        assert len(first.events) == 1
        assert telemetry.disable() is first
        assert not telemetry.enabled()


# --------------------------------------------------------------------------- #
# Merge determinism: serial == workers modulo timestamps and pids.
# --------------------------------------------------------------------------- #
class TestMergeDeterminism:
    def test_event_stream_identical_across_worker_counts(self):
        trainer = _trainer()
        design = Design(kind="state", code=GOOD_STATE)
        jobs = [_job(trainer), _job(trainer, state=design)]
        _, serial_events = _run_with_sink(jobs, workers=1)
        _, pooled_events = _run_with_sink(jobs, workers=2)

        def signatures(events):
            # A pool that cannot start falls back to serial with a counter;
            # placement is exactly what the contract excludes.
            return [e.signature() for e in events
                    if e.name != "parallel.serial_fallback"]

        assert signatures(serial_events) == signatures(pooled_events)
        names = {e.name for e in serial_events}
        assert {"scheduler.run", "scheduler.execute", "parallel.map",
                "job.train", "scheduler.jobs.submitted",
                "scheduler.jobs.trained"} <= names

    def test_job_train_spans_carry_identity_attrs(self):
        trainer = _trainer()
        _, events = _run_with_sink([_job(trainer)])
        trains = [e for e in events if e.name == "job.train"]
        assert len(trains) == 1
        assert trains[0].attrs["environment"] == "fcc"
        assert trains[0].attrs["design"] == "original"
        assert trains[0].attrs["seeds"] == "0,1"
        assert trains[0].value > 0 and trains[0].cpu_s >= 0


# --------------------------------------------------------------------------- #
# Store counters: the report's hit-rate is the store's own accounting.
# --------------------------------------------------------------------------- #
class TestStoreCounters:
    def test_cold_then_warm_counters_match_store(self, tmp_path):
        trainer = _trainer()
        cold_store = ResultStore(str(tmp_path))
        _, cold_events = _run_with_sink([_job(trainer)], store=cold_store)
        cold = _counter_totals(cold_events)
        assert cold.get("store.miss", 0) == cold_store.misses == 1
        assert cold.get("store.hit", 0) == cold_store.hits == 0
        assert cold.get("store.put", 0) == cold_store.puts == 2

        warm_store = ResultStore(str(tmp_path))
        _, warm_events = _run_with_sink([_job(trainer)], store=warm_store)
        warm = _counter_totals(warm_events)
        assert warm.get("store.hit", 0) == warm_store.hits == 2
        assert warm.get("store.miss", 0) == warm_store.misses == 0

        summary = telemetry.summarize(warm_events)
        assert summary["store"]["hits"] == warm_store.hits
        assert summary["store"]["hit_rate"] == 1.0
        stats = warm_store.statistics()
        assert stats["hits"] == summary["store"]["hits"]
        assert stats["misses"] == summary["store"]["misses"]

    def test_partial_probe_counter_matches_store(self, tmp_path):
        trainer = _trainer()
        first = ResultStore(str(tmp_path))
        _run_with_sink([_job(trainer, seeds=(0,))], store=first)
        # Widening the batch probes seed 0 successfully, then aborts on
        # seed 1: the probe is discarded work, counted as such.
        second = ResultStore(str(tmp_path))
        _, events = _run_with_sink([_job(trainer, seeds=(0, 1))],
                                   store=second)
        totals = _counter_totals(events)
        assert totals.get("store.partial_probe", 0) == \
            second.partial_probes == 1
        assert totals.get("store.miss", 0) == second.misses == 1
        assert totals.get("store.hit", 0) == second.hits == 0
        assert telemetry.summarize(events)["store"]["partial_probes"] == 1


# --------------------------------------------------------------------------- #
# Training metrics: recorded per checkpoint, persisted with the run.
# --------------------------------------------------------------------------- #
class TestTrainingMetrics:
    def test_series_and_run_metrics_align_with_checkpoints(self, tmp_path):
        trainer = _trainer()
        store = ResultStore(str(tmp_path))
        results, events = _run_with_sink([_job(trainer)], store=store)
        for run in results[0].runs:
            metrics = run.checkpoint_metrics
            assert set(metrics) == set(TRAINING_METRIC_NAMES)
            for values in metrics.values():
                assert len(values) == len(run.checkpoint_epochs)
                assert all(math.isfinite(v) for v in values)
        points = [e for e in events if e.kind == "series"]
        assert {e.name for e in points} == \
            {f"train.{name}" for name in TRAINING_METRIC_NAMES}
        # num_seeds x num_checkpoints points per metric, stepped by epoch.
        entropy = [e for e in points if e.name == "train.entropy"]
        assert len(entropy) == 2 * 2
        assert sorted({e.step for e in entropy}) == [3, 6]
        assert {e.attrs["seed"] for e in entropy} == {0, 1}

    def test_warm_replay_retains_metric_series(self, tmp_path):
        trainer = _trainer()
        cold, _ = _run_with_sink([_job(trainer)],
                                 store=ResultStore(str(tmp_path)))
        warm, _ = _run_with_sink([_job(trainer)],
                                 store=ResultStore(str(tmp_path)))
        assert warm[0].cached
        for fresh, replay in zip(cold[0].runs, warm[0].runs):
            assert replay.checkpoint_metrics == fresh.checkpoint_metrics

    def test_old_records_without_metrics_still_load(self, tmp_path):
        from repro.core.evaluation import TrainingRun
        store = ResultStore(str(tmp_path))
        run = TrainingRun(seed=0, reward_history=[0.1], checkpoint_epochs=[1],
                          checkpoint_scores=[0.5], early_stopped=False,
                          last_k_checkpoints=1)
        store.put_run("cd" * 32, run)
        assert ResultStore(str(tmp_path)).get_run("cd" * 32) \
            .checkpoint_metrics is None


# --------------------------------------------------------------------------- #
# Kernel compiler counters.
# --------------------------------------------------------------------------- #
class _Unlowerable(GenericActorCritic):
    """Codegen-style subclass whose forward the planner cannot verify."""

    def forward(self, states):  # pragma: no cover - structure-only
        return super().forward(states)


class TestCompileCounters:
    def test_lowered_and_fallback_counters(self):
        sink = telemetry.Telemetry()
        telemetry.set_telemetry(sink)
        assert plan_for(GenericActorCritic(
            (6, 8), 4, hidden_sizes=(8,),
            rng=np.random.default_rng(0))) is not None
        assert plan_for(_Unlowerable(
            (6, 8), 4, hidden_sizes=(8,),
            rng=np.random.default_rng(0))) is None
        telemetry.set_telemetry(None)

        totals = _counter_totals(sink.events)
        assert totals["compile.lowered"] == 1
        assert totals["compile.fallback"] == 1
        fallback, = (e for e in sink.events if e.name == "compile.fallback")
        assert fallback.attrs["network"] == "_Unlowerable"
        assert fallback.attrs["reason"]
        summary = telemetry.summarize(sink.events)
        assert summary["compile"]["lowered"] == 1
        assert summary["compile"]["fallbacks"] == {
            fallback.attrs["reason"]: 1}


# --------------------------------------------------------------------------- #
# Persistence and rendering.
# --------------------------------------------------------------------------- #
def _synthetic_sink(directory=None):
    sink = telemetry.Telemetry(directory)
    with sink.span("job.train", {"environment": "fcc",
                                 "design": "original", "seeds": "0"}):
        pass
    sink.counter("store.hit", 2)
    sink.counter("store.miss")
    sink.series("train.entropy", 3, 0.75, attrs={"seed": 0})
    return sink


class TestPersistenceAndRendering:
    def test_flush_load_roundtrip(self, tmp_path):
        sink = _synthetic_sink(str(tmp_path))
        path = sink.flush()
        assert path.endswith(".jsonl")
        loaded = telemetry.load_events(str(tmp_path))
        assert [e.signature() for e in loaded] == \
            [e.signature() for e in sink.events]
        with pytest.raises(FileNotFoundError):
            telemetry.load_events(str(tmp_path / "absent"))

    def test_chrome_trace_structure(self, tmp_path):
        sink = _synthetic_sink()
        trace = telemetry.chrome_trace(sink.events)
        assert set(trace) == {"traceEvents"}
        by_phase = {}
        for entry in trace["traceEvents"]:
            assert {"name", "ph", "ts", "pid"} <= set(entry)
            assert entry["ts"] >= 0.0  # rebased to the earliest event
            by_phase.setdefault(entry["ph"], []).append(entry)
        span, = by_phase["X"]
        assert span["name"] == "job.train" and span["dur"] >= 0.0
        assert len(by_phase["C"]) == 3  # two counters + one series point
        out = tmp_path / "trace.json"
        telemetry.write_chrome_trace(sink.events, str(out))
        assert json.loads(out.read_text())["traceEvents"]

    def test_render_report_sections(self):
        text = telemetry.render_report(_synthetic_sink().events)
        assert "telemetry summary" in text
        assert "2 hits / 1 misses (66.7% hit rate)" in text
        assert "train.entropy (1 points)" in text

    def test_summarize_empty(self):
        summary = telemetry.summarize([])
        assert summary["events"] == 0
        assert summary["store"]["hit_rate"] is None


# --------------------------------------------------------------------------- #
# CLI surfaces: `repro report`, `--telemetry`, `--trace`.
# --------------------------------------------------------------------------- #
class TestReportCLI:
    def test_report_renders_flushed_events(self, tmp_path, capsys):
        _synthetic_sink(str(tmp_path)).flush()
        assert main(["report", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert out.strip()
        assert "result store" in out

        assert main(["report", str(tmp_path), "--json"]) == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["store"]["hits"] == 2

    def test_report_missing_directory_fails(self, tmp_path):
        assert main(["report", str(tmp_path / "absent")]) == 1

    def test_campaign_telemetry_end_to_end(self, tmp_path, capsys):
        teldir = tmp_path / "telemetry"
        trace = tmp_path / "trace.json"
        argv = ["campaign", "--environments", "fcc",
                "--num-designs", "2", "--dataset-scale", "0.02",
                "--num-chunks", "6", "--train-epochs", "4",
                "--checkpoint-interval", "2", "--num-seeds", "1",
                "--no-early-stopping", "--store", str(tmp_path / "store"),
                "--telemetry", str(teldir), "--trace", str(trace)]
        assert main(argv) == 0
        capsys.readouterr()
        # The CLI closes its telemetry session; nothing leaks to later runs.
        assert not telemetry.enabled()

        events = telemetry.load_events(str(teldir))
        assert events
        trace_events = json.loads(trace.read_text())["traceEvents"]
        assert trace_events
        assert all({"name", "ph", "ts"} <= set(e) for e in trace_events)

        assert main(["report", str(teldir)]) == 0
        report = capsys.readouterr().out
        assert "result store" in report and "kernel compiler" in report
