"""Tests for candidate designs, the pool, the code sandbox and prompts."""

import numpy as np
import pytest

from repro.core import (
    CandidatePool,
    CodeBlockError,
    Design,
    DesignKind,
    DesignStatus,
    PARAMETER_DESCRIPTIONS,
    PromptConfig,
    build_network_prompt,
    build_state_prompt,
    compile_code_block,
    load_network_builder,
    load_state_function,
    system_message,
)
from repro.abr import ORIGINAL_STATE_SOURCE, STATE_FUNCTION_PARAMETERS
from repro.core.filters import random_observation


class TestDesign:
    def test_design_id_generated_and_unique(self):
        a = Design(kind="state", code="x = 1")
        b = Design(kind="state", code="x = 1")
        assert a.design_id != b.design_id
        assert a.design_id.startswith("state-")

    def test_empty_code_rejected(self):
        with pytest.raises(ValueError):
            Design(kind="state", code="   ")

    def test_kind_and_status_coercion(self):
        design = Design(kind="network", code="y = 2")
        assert design.kind is DesignKind.NETWORK
        assert design.status is DesignStatus.GENERATED

    def test_mark_rejected_and_flags(self):
        design = Design(kind="state", code="x = 1")
        design.mark_rejected(DesignStatus.REJECTED_COMPILATION, "syntax error")
        assert design.is_rejected
        assert not design.passed_prechecks
        assert design.rejection_reason == "syntax error"
        with pytest.raises(ValueError):
            design.mark_rejected(DesignStatus.EVALUATED, "not a rejection")

    def test_record_training_and_finalize(self):
        design = Design(kind="state", code="x = 1")
        design.record_training([1.0, 2.0], [0.5, 0.6])
        design.finalize(0.75)
        assert design.reward_history == [1.0, 2.0]
        assert design.checkpoint_scores == [0.5, 0.6]
        assert design.test_score == 0.75
        assert design.status is DesignStatus.EVALUATED
        assert "0.750" in design.summary()


class TestCandidatePool:
    def _pool(self):
        designs = [Design(kind="state", code=f"x = {i}") for i in range(4)]
        designs += [Design(kind="network", code=f"y = {i}") for i in range(2)]
        return CandidatePool(designs), designs

    def test_add_get_contains(self):
        pool, designs = self._pool()
        assert len(pool) == 6
        assert designs[0].design_id in pool
        assert pool.get(designs[0].design_id) is designs[0]
        with pytest.raises(KeyError):
            pool.get("missing")
        with pytest.raises(ValueError):
            pool.add(designs[0])

    def test_of_kind_and_status_queries(self):
        pool, designs = self._pool()
        assert len(pool.of_kind(DesignKind.STATE)) == 4
        assert len(pool.of_kind("network")) == 2
        designs[0].mark_rejected(DesignStatus.REJECTED_COMPILATION, "boom")
        assert len(pool.with_status(DesignStatus.REJECTED_COMPILATION)) == 1

    def test_top_k_and_best(self):
        pool, designs = self._pool()
        for i, design in enumerate(designs[:4]):
            design.status = DesignStatus.PENDING_EVALUATION
            design.finalize(float(i))
        top2 = pool.top_k(2, kind=DesignKind.STATE)
        assert [d.test_score for d in top2] == [3.0, 2.0]
        assert pool.best().test_score == 3.0
        assert pool.best(kind=DesignKind.NETWORK) is None

    def test_statistics_counts(self):
        pool, designs = self._pool()
        designs[0].mark_rejected(DesignStatus.REJECTED_COMPILATION, "x")
        designs[1].status = DesignStatus.PENDING_EVALUATION
        stats = pool.statistics()
        assert stats["total"] == 6
        assert stats["rejected_compilation"] == 1
        assert stats["pending_evaluation"] == 1
        assert stats["passed_prechecks"] == 1


class TestCodegenSandbox:
    def test_compile_original_state_source(self):
        func = load_state_function(ORIGINAL_STATE_SOURCE)
        state = func(random_observation(np.random.default_rng(0)))
        assert state.shape[0] == 6

    def test_missing_definition_rejected(self):
        with pytest.raises(CodeBlockError):
            load_state_function("import numpy as np\nx = 1")

    def test_syntax_error_rejected(self):
        with pytest.raises(CodeBlockError):
            compile_code_block("def f(:\n    pass", "f")

    def test_empty_code_rejected(self):
        with pytest.raises(CodeBlockError):
            compile_code_block("", "f")

    def test_non_callable_definition_rejected(self):
        with pytest.raises(CodeBlockError):
            compile_code_block("state_func = 42", "state_func")

    def test_disallowed_import_rejected(self):
        code = "import os\n\ndef state_func(*args):\n    return os.listdir('.')"
        with pytest.raises(CodeBlockError):
            compile_code_block(code, "state_func")

    def test_disallowed_import_inside_function_rejected_at_call(self):
        code = ("def state_func(*args):\n"
                "    import subprocess\n"
                "    return subprocess.run(['ls'])\n")
        func = compile_code_block(code, "state_func")
        with pytest.raises(CodeBlockError):
            func()

    def test_scipy_import_allowed(self):
        code = ("from scipy.signal import savgol_filter\n"
                "import numpy as np\n\n"
                "def state_func(*args):\n"
                "    return savgol_filter(np.arange(9.0), 5, 1)\n")
        func = compile_code_block(code, "state_func")
        assert func().shape == (9,)

    def test_execution_error_at_module_level_rejected(self):
        with pytest.raises(CodeBlockError):
            compile_code_block("raise RuntimeError('boom')\n\ndef f():\n    pass", "f")

    def test_network_builder_namespace_provides_nn_library(self):
        code = ("def build_network(state_shape, num_actions, rng=None):\n"
                "    return nn_library.GenericActorCritic(state_shape, num_actions,\n"
                "                                         hidden_sizes=(16,), rng=rng)\n")
        builder = load_network_builder(code)
        network = builder((6, 8), 6, rng=np.random.default_rng(0))
        assert network.num_actions == 6


class TestPrompts:
    def test_state_prompt_contains_original_code_and_glossary(self):
        messages = build_state_prompt()
        assert messages[0].role == "system"
        user = messages[1].content
        assert "state_func" in user
        for name in STATE_FUNCTION_PARAMETERS:
            assert name in user
        assert "normalized" in user.lower()

    def test_network_prompt_mentions_build_network(self):
        user = build_network_prompt()[1].content
        assert "build_network" in user
        assert "actor" in user.lower()

    def test_prompt_config_switches(self):
        minimal = PromptConfig(use_chain_of_thought=False,
                               describe_parameters=False,
                               request_normalization=False)
        full = PromptConfig()
        minimal_text = build_state_prompt(minimal)[1].content
        full_text = build_state_prompt(full)[1].content
        assert len(full_text) > len(minimal_text)
        assert "at least three distinct ideas" not in minimal_text
        assert "at least three distinct ideas" in full_text

    def test_environment_hint_included(self):
        config = PromptConfig(environment_hint="a LEO satellite network")
        assert "LEO satellite" in build_state_prompt(config)[1].content
        assert "LEO satellite" in build_network_prompt(config)[1].content

    def test_parameter_descriptions_cover_contract(self):
        assert set(PARAMETER_DESCRIPTIONS) == set(STATE_FUNCTION_PARAMETERS)

    def test_system_message_is_system_role(self):
        assert system_message().role == "system"
