"""Property-based tests (hypothesis) for core data structures and invariants."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import nn
from repro.abr import LinearQoE, STANDARD_LADDER_KBPS, synthetic_video
from repro.abr.env import ChunkLevelSimulator, SimulatorConfig
from repro.core.early_stopping import (
    prepare_reward_prefix,
    top_fraction_labels,
    tune_threshold_zero_fnr,
    classification_rates,
)
from repro.llm import HashingEmbedder
from repro.rl import discounted_returns
from repro.traces import Trace


COMMON_SETTINGS = settings(max_examples=40, deadline=None,
                           suppress_health_check=[HealthCheck.too_slow])


finite_floats = st.floats(min_value=-1e6, max_value=1e6,
                          allow_nan=False, allow_infinity=False)
small_floats = st.floats(min_value=-100.0, max_value=100.0,
                         allow_nan=False, allow_infinity=False)


class TestTensorProperties:
    @COMMON_SETTINGS
    @given(st.lists(small_floats, min_size=1, max_size=30))
    def test_softmax_is_a_distribution(self, values):
        probs = nn.tensor(np.array(values)).softmax().numpy()
        assert np.all(probs >= 0)
        assert probs.sum() == pytest.approx(1.0, abs=1e-9)

    @COMMON_SETTINGS
    @given(st.lists(small_floats, min_size=2, max_size=20),
           st.lists(small_floats, min_size=2, max_size=20))
    def test_addition_is_commutative(self, a_values, b_values):
        n = min(len(a_values), len(b_values))
        a = nn.tensor(np.array(a_values[:n]))
        b = nn.tensor(np.array(b_values[:n]))
        np.testing.assert_allclose((a + b).numpy(), (b + a).numpy())

    @COMMON_SETTINGS
    @given(st.lists(small_floats, min_size=1, max_size=20))
    def test_sum_gradient_is_ones(self, values):
        x = nn.tensor(np.array(values), requires_grad=True)
        x.sum().backward()
        np.testing.assert_allclose(x.grad, np.ones(len(values)))

    @COMMON_SETTINGS
    @given(st.lists(st.floats(min_value=0.1, max_value=50.0), min_size=1, max_size=16))
    def test_log_exp_roundtrip(self, values):
        x = nn.tensor(np.array(values))
        np.testing.assert_allclose(x.log().exp().numpy(), np.array(values),
                                   rtol=1e-9)

    @COMMON_SETTINGS
    @given(st.integers(min_value=1, max_value=5), st.integers(min_value=1, max_value=5))
    def test_reshape_preserves_contents(self, rows, cols):
        data = np.arange(float(rows * cols))
        x = nn.tensor(data)
        reshaped = x.reshape(rows, cols)
        np.testing.assert_allclose(reshaped.numpy().ravel(), data)


class TestTraceProperties:
    @COMMON_SETTINGS
    @given(st.lists(st.floats(min_value=0.01, max_value=200.0), min_size=2,
                    max_size=50),
           st.floats(min_value=0.1, max_value=10.0))
    def test_throughput_at_returns_existing_sample(self, throughputs, interval):
        timestamps = np.arange(len(throughputs)) * interval
        trace = Trace(timestamps, np.array(throughputs))
        for t in np.linspace(0, 3 * trace.duration_s, 7):
            assert trace.throughput_at(t) in throughputs

    @COMMON_SETTINGS
    @given(st.lists(st.floats(min_value=0.01, max_value=200.0), min_size=2,
                    max_size=30),
           st.floats(min_value=0.1, max_value=8.0))
    def test_scaling_scales_mean(self, throughputs, factor):
        timestamps = np.arange(len(throughputs), dtype=float)
        trace = Trace(timestamps, np.array(throughputs))
        scaled = trace.scaled(factor)
        assert scaled.mean_throughput_mbps == pytest.approx(
            trace.mean_throughput_mbps * factor, rel=1e-9)

    @COMMON_SETTINGS
    @given(st.lists(st.floats(min_value=0.05, max_value=100.0), min_size=2,
                    max_size=30))
    def test_mean_between_min_and_max(self, throughputs):
        trace = Trace(np.arange(len(throughputs), dtype=float),
                      np.array(throughputs))
        # The weighted average can land one ulp outside [min, max] when all
        # samples are (nearly) identical; allow float round-off.
        tolerance = 1e-9 * max(abs(trace.max_throughput_mbps), 1.0)
        assert trace.min_throughput_mbps - tolerance <= trace.mean_throughput_mbps \
            <= trace.max_throughput_mbps + tolerance


class TestQoEProperties:
    @COMMON_SETTINGS
    @given(st.integers(min_value=0, max_value=5),
           st.integers(min_value=0, max_value=5),
           st.floats(min_value=0.0, max_value=30.0))
    def test_reward_decreases_with_rebuffering(self, bitrate, previous, rebuffer):
        qoe = LinearQoE(STANDARD_LADDER_KBPS)
        clean = qoe.chunk_reward(bitrate, 0.0, previous)
        stalled = qoe.chunk_reward(bitrate, rebuffer, previous)
        assert stalled <= clean + 1e-12

    @COMMON_SETTINGS
    @given(st.integers(min_value=0, max_value=5))
    def test_no_switch_has_no_smoothness_penalty(self, bitrate):
        qoe = LinearQoE(STANDARD_LADDER_KBPS)
        detail = qoe.chunk_reward_detail(bitrate, 0.0, bitrate)
        assert detail.smoothness_penalty == 0.0

    @COMMON_SETTINGS
    @given(st.integers(min_value=0, max_value=4))
    def test_higher_bitrate_higher_quality(self, bitrate):
        qoe = LinearQoE(STANDARD_LADDER_KBPS)
        assert qoe.quality(bitrate + 1) > qoe.quality(bitrate)


class TestSimulatorProperties:
    @COMMON_SETTINGS
    @given(st.floats(min_value=0.3, max_value=50.0),
           st.integers(min_value=0, max_value=5))
    def test_chunk_accounting_invariants(self, bandwidth, bitrate):
        video = synthetic_video("standard", num_chunks=4, seed=0)
        trace = Trace(np.arange(0.0, 100.0, 1.0), np.full(100, bandwidth))
        sim = ChunkLevelSimulator(video, trace, config=SimulatorConfig())
        result = sim.step(bitrate)
        assert result.download_time_s > 0
        assert result.rebuffer_s >= 0
        assert result.buffer_s >= 0
        assert result.remaining_chunks == video.num_chunks - 1
        # Rebuffering can never exceed the download time itself.
        assert result.rebuffer_s <= result.download_time_s + 1e-9


class TestRLProperties:
    @COMMON_SETTINGS
    @given(st.lists(small_floats, min_size=1, max_size=30),
           st.floats(min_value=0.0, max_value=0.999))
    def test_discounted_returns_recurrence(self, rewards, gamma):
        returns = discounted_returns(rewards, gamma)
        for t in range(len(rewards) - 1):
            assert returns[t] == pytest.approx(rewards[t] + gamma * returns[t + 1],
                                               rel=1e-9, abs=1e-9)

    @COMMON_SETTINGS
    @given(st.lists(st.floats(min_value=0.0, max_value=10.0), min_size=1,
                    max_size=30))
    def test_nonnegative_rewards_give_nonnegative_returns(self, rewards):
        returns = discounted_returns(rewards, 0.9)
        assert np.all(returns >= 0)


class TestEarlyStoppingProperties:
    @COMMON_SETTINGS
    @given(st.lists(finite_floats, min_size=0, max_size=30),
           st.integers(min_value=1, max_value=20))
    def test_prepare_reward_prefix_length(self, rewards, length):
        prefix = prepare_reward_prefix(rewards, length)
        assert prefix.shape == (length,)
        assert np.all(np.isfinite(prefix))

    @COMMON_SETTINGS
    @given(st.lists(finite_floats, min_size=1, max_size=200),
           st.floats(min_value=0.01, max_value=1.0))
    def test_top_fraction_labels_invariants(self, scores, fraction):
        labels = top_fraction_labels(scores, fraction)
        assert labels.shape == (len(scores),)
        assert 1 <= labels.sum() <= len(scores)
        # Every positive has a score >= every negative's score.
        scores_arr = np.asarray(scores)
        if labels.sum() < len(scores):
            assert scores_arr[labels == 1].min() >= scores_arr[labels == 0].max() - 1e-9

    @COMMON_SETTINGS
    @given(st.lists(st.floats(min_value=0.0, max_value=1.0), min_size=2,
                    max_size=100))
    def test_tuned_threshold_always_gives_zero_fnr(self, scores):
        scores_arr = np.asarray(scores)
        labels = top_fraction_labels(scores_arr, 0.2)
        threshold = tune_threshold_zero_fnr(scores_arr, labels)
        rates = classification_rates(scores_arr, labels, threshold)
        assert rates["false_negative_rate"] == 0.0


class TestEmbeddingProperties:
    @COMMON_SETTINGS
    @given(st.text(min_size=1, max_size=300))
    def test_embedding_norm_at_most_one(self, text):
        vector = HashingEmbedder(dimension=64).embed(text)
        norm = np.linalg.norm(vector)
        assert norm == pytest.approx(1.0, abs=1e-9) or norm == 0.0

    @COMMON_SETTINGS
    @given(st.text(min_size=1, max_size=200))
    def test_embedding_deterministic(self, text):
        embedder = HashingEmbedder(dimension=32)
        np.testing.assert_array_equal(embedder.embed(text), embedder.embed(text))
