"""Tests for the analysis utilities (metrics, tables, curves, experiment drivers)."""

import numpy as np
import pytest

from repro.analysis import (
    CurveComparison,
    ExperimentScale,
    TrainingCurve,
    build_design_corpus,
    build_environment,
    cumulative_best,
    format_improvement,
    format_score,
    improvement_percent,
    median_of_seeds,
    moving_average,
    render_ascii_curves,
    render_table,
    run_component_experiment,
    smoothed_score,
)


class TestMetrics:
    def test_smoothed_score_last_k(self):
        assert smoothed_score([1.0, 2.0, 3.0, 4.0], last_k=2) == pytest.approx(3.5)
        assert smoothed_score([], last_k=2) == float("-inf")
        with pytest.raises(ValueError):
            smoothed_score([1.0], last_k=0)

    def test_median_of_seeds_ignores_non_finite(self):
        assert median_of_seeds([1.0, float("-inf"), 3.0]) == pytest.approx(2.0)
        assert median_of_seeds([float("-inf")]) == float("-inf")

    def test_improvement_percent_matches_paper_convention(self):
        # FCC row of Table 3: 1.070 -> 1.090 is +1.9%.
        assert improvement_percent(1.070, 1.090) == pytest.approx(1.87, abs=0.05)
        # Starlink emulation row has a negative original score.
        assert improvement_percent(-0.0482, 0.0899) == pytest.approx(286.5, abs=1.0)

    def test_improvement_percent_edge_cases(self):
        assert improvement_percent(0.0, 1.0) is None
        assert improvement_percent(float("nan"), 1.0) is None

    def test_moving_average(self):
        np.testing.assert_allclose(moving_average([1, 2, 3, 4], 2),
                                    [1.0, 1.5, 2.5, 3.5])
        with pytest.raises(ValueError):
            moving_average([1.0], 0)

    def test_cumulative_best(self):
        np.testing.assert_allclose(cumulative_best([1, 3, 2, 5]), [1, 3, 3, 5])
        assert cumulative_best([]).size == 0


class TestTables:
    def test_render_table_alignment(self):
        table = render_table(["Dataset", "Score"], [["FCC", 1.07], ["5G", 27.8]],
                             title="Table 3")
        lines = table.splitlines()
        assert lines[0] == "Table 3"
        assert "Dataset" in lines[1]
        assert any("FCC" in line for line in lines)

    def test_render_table_markdown(self):
        table = render_table(["A"], [["x"]], markdown=True)
        assert table.splitlines()[1].startswith("| -")

    def test_render_table_row_length_mismatch(self):
        with pytest.raises(ValueError):
            render_table(["A", "B"], [["only one"]])

    def test_format_helpers(self):
        assert format_score(1.23456) == "1.235"
        assert format_score(None) == "-"
        assert format_score(float("nan")) == "-"
        assert format_improvement(13.04) == "13.0%"
        assert format_improvement(None) == "–"


class TestCurves:
    def test_training_curve_add_and_final(self):
        curve = TrainingCurve("Original")
        curve.add(10, 0.5)
        curve.add(20, 0.7)
        assert curve.final_score == 0.7
        with pytest.raises(ValueError):
            curve.add(15, 0.9)  # epochs must increase

    def test_curve_validation(self):
        with pytest.raises(ValueError):
            TrainingCurve("x", epochs=[1], scores=[])

    def test_smoothed_curve(self):
        curve = TrainingCurve("x", epochs=[1, 2, 3], scores=[0.0, 1.0, 2.0])
        smoothed = curve.smoothed(window=2)
        np.testing.assert_allclose(smoothed.scores, [0.0, 0.5, 1.5])

    def test_comparison_winner_and_lookup(self):
        comparison = CurveComparison("panel")
        comparison.add_curve(TrainingCurve("Original", [1, 2], [0.1, 0.2]))
        comparison.add_curve(TrainingCurve("Best Generated", [1, 2], [0.15, 0.3]))
        assert comparison.winner() == "Best Generated"
        assert comparison.curve("Original").final_score == 0.2
        assert comparison.final_scores()["Best Generated"] == 0.3
        with pytest.raises(KeyError):
            comparison.curve("missing")

    def test_empty_comparison_winner_raises(self):
        with pytest.raises(ValueError):
            CurveComparison("empty").winner()

    def test_render_ascii_curves(self):
        comparison = CurveComparison("panel")
        comparison.add_curve(TrainingCurve("Original", [1, 2, 3], [0.1, 0.2, 0.3]))
        art = render_ascii_curves(comparison, width=20, height=5)
        assert "panel" in art
        assert "o=Original" in art

    def test_render_ascii_empty(self):
        assert "no data" in render_ascii_curves(CurveComparison("empty"))


class TestExperimentDrivers:
    TINY = ExperimentScale(dataset_scale=0.02, num_chunks=8, train_epochs=8,
                           checkpoint_interval=4, last_k_checkpoints=2,
                           num_seeds=1, num_designs=4, max_trained_designs=2,
                           seed=0)

    def test_build_environment(self):
        setup = build_environment("4g", self.TINY)
        assert setup.video.bitrates_kbps[-1] == 53000  # high ladder for 4G
        assert len(setup.train_traces) >= 1
        assert len(setup.test_traces) >= 1

    def test_experiment_scale_evaluation_config(self):
        config = self.TINY.evaluation_config()
        assert config.train_epochs == 8
        assert config.num_seeds == 1

    def test_run_component_experiment_state(self):
        result = run_component_experiment("fcc", "state", "gpt-4", self.TINY)
        assert result.environment == "fcc"
        assert np.isfinite(result.original_score)
        assert result.filter_report.total == self.TINY.num_designs
        assert len(result.comparison.curves) >= 1
        assert result.comparison.curves[0].label == "Original"
        if result.best_score is not None:
            assert result.improvement_percent is not None

    def test_run_component_experiment_network(self):
        result = run_component_experiment("fcc", "network", "gpt-3.5", self.TINY)
        assert result.kind == "network"
        # Every evaluated design must have a recorded score.
        for design_id, score in result.evaluated_scores.items():
            assert np.isfinite(score) or score == float("-inf")

    def test_build_design_corpus(self):
        samples = build_design_corpus("fcc", "gpt-4", num_designs=5, scale=self.TINY)
        assert len(samples) >= 1
        for sample in samples:
            assert len(sample.reward_prefix) == self.TINY.train_epochs
            assert isinstance(sample.code, str) and sample.code
            assert np.isfinite(sample.final_score)
