"""Tests for the campaign scheduler, the result store and registry schedules.

Covers the PR's hard guarantees:

* campaign scores are bit-identical across (serial reference, workers=1
  scheduler, workers=2 scheduler with lockstep-inside-worker);
* the result store hits/misses/resumes correctly and invalidates on any
  config change that can alter results — but not on engine-only toggles;
* the early-stopping classifier observes identical reward prefixes
  regardless of job execution order and is never mutated by decisions;
* the trace registry's published Table 1 schedules are the per-environment
  defaults for the pipeline and the CLI, with explicit flags overriding.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import ExperimentScale
from repro.analysis.experiments import build_environment
from repro.cli import DEFAULT_SCHEDULE_SCALE, build_parser, main, resolve_schedule
from repro.core import (
    CampaignScheduler,
    Design,
    DesignTrainer,
    EarlyStoppingConfig,
    EvaluationJob,
    NadaConfig,
    NadaPipeline,
    ParallelConfig,
    ResultStore,
    RewardTrajectoryClassifier,
    TestScoreProtocol,
    context_fingerprint,
    design_fingerprint,
    protocol_score,
    result_key,
)
from repro.core.evaluation import TrainingRun
from repro.core.pipeline import NadaCampaign
from repro.llm import StateDesignSpace, StateDesignSpec
from repro.traces.registry import ENVIRONMENTS

TINY = ExperimentScale(train_epochs=6, checkpoint_interval=3,
                       last_k_checkpoints=2, num_seeds=2,
                       dataset_scale=0.02, num_chunks=6)

GOOD_STATE = StateDesignSpace().render(StateDesignSpec(extra_features=("buffer_diff",)))
OTHER_STATE = StateDesignSpace().render(StateDesignSpec(extra_features=("throughput_trend",)))


def _trainer(environment: str, scale: ExperimentScale = TINY) -> DesignTrainer:
    setup = build_environment(environment, scale)
    return DesignTrainer(setup.video, setup.train_traces, setup.test_traces,
                         config=scale.evaluation_config(), qoe=setup.qoe)


def _assert_same_runs(runs_a, runs_b):
    assert len(runs_a) == len(runs_b)
    for run_a, run_b in zip(runs_a, runs_b):
        assert run_a.seed == run_b.seed
        assert run_a.reward_history == run_b.reward_history
        assert run_a.checkpoint_epochs == run_b.checkpoint_epochs
        assert run_a.checkpoint_scores == run_b.checkpoint_scores
        assert run_a.early_stopped == run_b.early_stopped


class ObservantClassifier(RewardTrajectoryClassifier):
    """Deterministic stand-in recording every prefix it is asked about."""

    def __init__(self, stop_below: float):
        super().__init__(EarlyStoppingConfig(reward_prefix_length=3))
        self.threshold = 0.5
        self.stop_below = stop_below
        self.observed = []

    def should_stop(self, reward_prefix):
        prefix = [float(r) for r in reward_prefix]
        self.observed.append(tuple(prefix))
        return float(np.mean(prefix)) < self.stop_below


class TestSchedulerEquivalence:
    """Campaign scores must be bit-identical for every execution shape."""

    @pytest.fixture(scope="class")
    def campaign_jobs(self):
        design = Design(kind="state", code=GOOD_STATE)
        jobs = []
        for environment in ("fcc", "starlink"):
            trainer = _trainer(environment)
            for state in (None, design):
                jobs.append(EvaluationJob(trainer=trainer, state_design=state,
                                          network_design=None, seeds=(0, 1),
                                          environment=environment))
        return jobs

    @pytest.fixture(scope="class")
    def serial_reference(self, campaign_jobs):
        """Each job trained serially, in submission order."""
        return [job.trainer.run_seeds(job.state_design, job.network_design,
                                      list(job.seeds))
                for job in campaign_jobs]

    @pytest.mark.parametrize("workers", [1, 2])
    def test_scheduler_matches_serial_reference(self, campaign_jobs,
                                                serial_reference, workers):
        scheduler = CampaignScheduler(ParallelConfig(max_workers=workers))
        results = scheduler.run(campaign_jobs)
        for result, reference, job in zip(results, serial_reference,
                                          campaign_jobs):
            _assert_same_runs(result.runs, reference)
            last_k = job.trainer.config.last_k_checkpoints
            assert result.score == protocol_score(reference, last_k)

    def test_results_preserve_submission_order(self, campaign_jobs):
        results = CampaignScheduler().run(campaign_jobs)
        assert [r.job.environment for r in results] == \
            [job.environment for job in campaign_jobs]

    def test_job_requires_seeds(self):
        trainer = _trainer("fcc")
        with pytest.raises(ValueError):
            EvaluationJob(trainer=trainer, state_design=None,
                          network_design=None, seeds=())

    def test_protocol_has_no_fanout_of_its_own(self):
        """The protocol executes exclusively through its scheduler."""
        protocol = TestScoreProtocol(_trainer("fcc"))
        assert isinstance(protocol.scheduler, CampaignScheduler)
        import inspect

        from repro.core import evaluation, pipeline
        from repro.analysis import experiments
        for module in (evaluation, pipeline, experiments):
            assert "parallel_map(" not in inspect.getsource(module)


class TestCampaignDriver:
    def _config(self):
        return NadaConfig(
            target="state", num_designs=3, llm="gpt-4",
            evaluation=TINY.evaluation_config(),
            use_early_stopping=False, seed=0)

    def test_campaign_matches_individual_pipelines(self):
        campaign = NadaCampaign.for_environments(
            ["fcc", "starlink"], config=self._config(),
            dataset_scale=0.02, num_chunks=6, seed=0)
        combined = campaign.run()

        for environment in ("fcc", "starlink"):
            alone = NadaPipeline.for_environment(
                environment, config=self._config(),
                dataset_scale=0.02, num_chunks=6, seed=0).run()
            assert combined[environment].original_score == alone.original_score
            assert combined[environment].best_score == alone.best_score
            assert combined[environment].fully_trained == alone.fully_trained

        summary = combined.summary()
        assert "FCC" in summary and "Starlink" in summary


class TestResultStore:
    def test_roundtrip_is_bit_exact(self, tmp_path):
        store = ResultStore(str(tmp_path))
        run = TrainingRun(seed=3,
                          reward_history=[0.1, -2.5e-17, 1 / 3],
                          checkpoint_epochs=[3, 6],
                          checkpoint_scores=[np.pi, -1.0000000000000002],
                          early_stopped=False, last_k_checkpoints=2)
        store.put_run("ab" * 32, run)
        loaded = store.get_run("ab" * 32)
        assert loaded.seed == run.seed
        assert loaded.reward_history == run.reward_history
        assert loaded.checkpoint_scores == run.checkpoint_scores
        assert loaded.last_k_checkpoints == 2
        assert len(store) == 1

    def test_miss_then_hit_across_scheduler_instances(self, tmp_path):
        trainer = _trainer("fcc")
        job = EvaluationJob(trainer=trainer, state_design=None,
                            network_design=None, seeds=(0, 1),
                            environment="fcc")
        cold_store = ResultStore(str(tmp_path))
        cold = CampaignScheduler(store=cold_store).run([job])[0]
        assert not cold.cached
        # The all-or-nothing lookup short-circuits on the first absent seed.
        assert cold_store.misses >= 1 and cold_store.hits == 0
        assert len(cold_store) == 2  # one record per seed

        warm_store = ResultStore(str(tmp_path))
        warm = CampaignScheduler(store=warm_store).run([job])[0]
        assert warm.cached
        assert warm_store.hits == 2
        assert warm.score == cold.score
        _assert_same_runs(warm.runs, cold.runs)

    def test_interrupted_campaign_resumes(self, tmp_path):
        trainer = _trainer("fcc")
        design = Design(kind="state", code=GOOD_STATE)
        job_a = EvaluationJob(trainer=trainer, state_design=None,
                              network_design=None, seeds=(0, 1),
                              environment="fcc")
        job_b = EvaluationJob(trainer=trainer, state_design=design,
                              network_design=None, seeds=(0, 1),
                              environment="fcc")
        # First session completes only job A, then is "interrupted".
        CampaignScheduler(store=ResultStore(str(tmp_path))).run([job_a])
        # The resumed campaign submits the full work-graph; only B computes.
        store = ResultStore(str(tmp_path))
        resumed = CampaignScheduler(store=store).run([job_a, job_b])
        assert resumed[0].cached and not resumed[1].cached
        assert store.hits == 2

    def test_config_change_invalidates(self, tmp_path):
        scale = TINY
        trainer = _trainer("fcc", scale)
        store = ResultStore(str(tmp_path))
        scheduler = CampaignScheduler(store=store)
        job = EvaluationJob(trainer=trainer, state_design=None,
                            network_design=None, seeds=(0,),
                            environment="fcc")
        scheduler.run([job])

        # A longer schedule must not be served from the old records.
        longer = _trainer("fcc", ExperimentScale(
            train_epochs=TINY.train_epochs + 3,
            checkpoint_interval=TINY.checkpoint_interval,
            last_k_checkpoints=TINY.last_k_checkpoints,
            num_seeds=TINY.num_seeds, dataset_scale=TINY.dataset_scale,
            num_chunks=TINY.num_chunks))
        changed = EvaluationJob(trainer=longer, state_design=None,
                                network_design=None, seeds=(0,),
                                environment="fcc")
        result = CampaignScheduler(store=ResultStore(str(tmp_path))).run(
            [changed])[0]
        assert not result.cached
        assert len(result.runs[0].reward_history) == TINY.train_epochs + 3

    def test_engine_toggles_do_not_invalidate(self):
        """lockstep/batched-eval are bit-identical engines, not key material."""
        from dataclasses import replace as dc_replace
        trainer = _trainer("fcc")
        base = context_fingerprint(trainer, "fcc")
        toggled = DesignTrainer(trainer.video, trainer.train_traces,
                                trainer.test_traces,
                                config=dc_replace(trainer.config,
                                                  lockstep_training=False,
                                                  batched_evaluation=False),
                                qoe=trainer.qoe)
        assert context_fingerprint(toggled, "fcc") == base
        # ...while a result-shaping field is key material.
        heavier = DesignTrainer(trainer.video, trainer.train_traces,
                                trainer.test_traces,
                                config=dc_replace(trainer.config,
                                                  train_epochs=99),
                                qoe=trainer.qoe)
        assert context_fingerprint(heavier, "fcc") != base

    def test_subset_seed_batches_share_records(self, tmp_path):
        """num_seeds/last_k are aggregation-only: shorter protocols hit."""
        trainer = _trainer("fcc")
        CampaignScheduler(store=ResultStore(str(tmp_path))).run(
            [EvaluationJob(trainer=trainer, state_design=None,
                           network_design=None, seeds=(0, 1),
                           environment="fcc")])
        # A different protocol width over the same context must still hit.
        narrower = _trainer("fcc", ExperimentScale(
            train_epochs=TINY.train_epochs,
            checkpoint_interval=TINY.checkpoint_interval,
            last_k_checkpoints=1, num_seeds=1,
            dataset_scale=TINY.dataset_scale, num_chunks=TINY.num_chunks))
        result = CampaignScheduler(store=ResultStore(str(tmp_path))).run(
            [EvaluationJob(trainer=narrower, state_design=None,
                           network_design=None, seeds=(0,),
                           environment="fcc")])[0]
        assert result.cached
        # The loaded run is re-stamped with the requesting aggregation.
        assert result.runs[0].last_k_checkpoints == 1

    def test_partial_batches_do_not_count_as_hits(self, tmp_path):
        trainer = _trainer("fcc")
        CampaignScheduler(store=ResultStore(str(tmp_path))).run(
            [EvaluationJob(trainer=trainer, state_design=None,
                           network_design=None, seeds=(0,),
                           environment="fcc")])
        store = ResultStore(str(tmp_path))
        result = CampaignScheduler(store=store).run(
            [EvaluationJob(trainer=trainer, state_design=None,
                           network_design=None, seeds=(0, 1),
                           environment="fcc")])[0]
        # Seed 0 was probed successfully but the batch retrained whole, so
        # the probe must not be reported as saved work.
        assert not result.cached
        assert store.hits == 0 and store.misses == 1

    def test_per_seed_split_matches_whole_batch(self):
        """Fan-out splits non-lockstep jobs by seed without changing results."""
        no_lockstep = ExperimentScale(
            train_epochs=TINY.train_epochs,
            checkpoint_interval=TINY.checkpoint_interval,
            last_k_checkpoints=TINY.last_k_checkpoints,
            num_seeds=TINY.num_seeds, dataset_scale=TINY.dataset_scale,
            num_chunks=TINY.num_chunks, lockstep=False)
        trainer = _trainer("fcc", no_lockstep)
        job = EvaluationJob(trainer=trainer, state_design=None,
                            network_design=None, seeds=(0, 1),
                            environment="fcc")
        assert CampaignScheduler()._splits_without_cost(job)
        whole = CampaignScheduler(ParallelConfig(max_workers=1)).run([job])[0]
        split = CampaignScheduler(ParallelConfig(max_workers=2)).run([job])[0]
        assert split.score == whole.score
        _assert_same_runs(split.runs, whole.runs)

    def test_context_memoization_tracks_dtype(self):
        """A dtype switch between runs must not serve a stale fingerprint."""
        from repro import nn
        trainer = _trainer("fcc")
        scheduler = CampaignScheduler()
        job = EvaluationJob(trainer=trainer, state_design=None,
                            network_design=None, seeds=(0,),
                            environment="fcc")
        with nn.default_dtype("float64"):
            float64_key = scheduler._context(job)
            assert scheduler._context(job) == float64_key  # memo hit
        with nn.default_dtype("float32"):
            assert scheduler._context(job) != float64_key

    def test_design_fingerprint_is_content_addressed(self):
        design_a = Design(kind="state", code=GOOD_STATE)
        design_b = Design(kind="state", code=GOOD_STATE)  # new id, same code
        design_c = Design(kind="state", code=OTHER_STATE)
        assert design_a.design_id != design_b.design_id
        assert design_fingerprint(design_a, None) == design_fingerprint(design_b, None)
        assert design_fingerprint(design_a, None) != design_fingerprint(design_c, None)
        assert design_fingerprint(None, None) != design_fingerprint(design_a, None)
        key = result_key("ctx", design_fingerprint(None, None), 0)
        assert key != result_key("ctx", design_fingerprint(None, None), 1)

    def test_early_stopping_jobs_bypass_store(self, tmp_path):
        trainer = _trainer("fcc")
        store = ResultStore(str(tmp_path))
        classifier = ObservantClassifier(stop_below=float("inf"))  # always stop
        job = EvaluationJob(trainer=trainer, state_design=None,
                            network_design=None, seeds=(0,),
                            early_stopping=classifier, environment="fcc")
        result = CampaignScheduler(store=store).run([job])[0]
        assert result.runs[0].early_stopped
        assert len(store) == 0 and store.hits == 0 and store.misses == 0


class TestEarlyStoppingOrderInvariance:
    """Satellite audit: classifier decisions are independent of job order."""

    @pytest.fixture(scope="class")
    def setup(self):
        trainer = _trainer("fcc")
        designs = [Design(kind="state", code=GOOD_STATE),
                   Design(kind="state", code=OTHER_STATE)]
        return trainer, designs

    def _evaluate(self, trainer, pairs, classifier):
        protocol = TestScoreProtocol(trainer, seeds=[0, 1])
        return protocol.run_many(pairs, early_stopping=classifier)

    def test_decisions_invariant_under_job_order(self, setup):
        trainer, designs = setup
        pairs = [(designs[0], None), (designs[1], None)]
        clf_forward = ObservantClassifier(stop_below=0.0)
        forward = self._evaluate(trainer, pairs, clf_forward)
        clf_reverse = ObservantClassifier(stop_below=0.0)
        reverse = self._evaluate(trainer, list(reversed(pairs)), clf_reverse)

        # Same per-design outcome regardless of execution order...
        for (score_f, runs_f), (score_r, runs_r) in zip(forward,
                                                        reversed(reverse)):
            assert score_f == score_r
            _assert_same_runs(runs_f, runs_r)
        # ...because each design's observed reward prefixes are identical.
        assert sorted(clf_forward.observed) == sorted(clf_reverse.observed)

    def test_fitted_classifier_state_is_never_mutated_by_decisions(self):
        rng = np.random.default_rng(0)
        classifier = RewardTrajectoryClassifier(
            EarlyStoppingConfig(reward_prefix_length=4, training_epochs=5))
        prefixes = rng.normal(size=(6, 4)).tolist()
        classifier.fit(prefixes, rng.normal(size=6).tolist())
        snapshot = (classifier.threshold, classifier._mean, classifier._std,
                    [p.data.copy() for p in classifier._model.parameters()])
        for prefix in prefixes:
            classifier.should_stop(prefix)
        assert classifier.threshold == snapshot[0]
        assert classifier._mean == snapshot[1]
        assert classifier._std == snapshot[2]
        for before, after in zip(snapshot[3],
                                 classifier._model.parameters()):
            np.testing.assert_array_equal(before, after.data)


class TestRegistrySchedules:
    """Satellite: Table 1 schedules are the wired-in per-environment defaults."""

    def test_evaluation_schedule_scales_published_values(self):
        spec = ENVIRONMENTS["fcc"]
        assert spec.evaluation_schedule() == (40_000, 500)
        assert spec.evaluation_schedule(0.001) == (40, 1)
        assert ENVIRONMENTS["starlink"].evaluation_schedule(0.01) == (40, 1)
        with pytest.raises(ValueError):
            spec.evaluation_schedule(0.0)

    def test_resolve_schedule_uses_registry_defaults(self):
        fcc_epochs, fcc_interval = resolve_schedule("fcc", None, None)
        spec = ENVIRONMENTS["fcc"]
        assert (fcc_epochs, fcc_interval) == \
            spec.evaluation_schedule(DEFAULT_SCHEDULE_SCALE)
        # Starlink's published budget is 10x shorter and now flows through.
        starlink_epochs, _ = resolve_schedule("starlink", None, None)
        assert starlink_epochs * 10 == fcc_epochs

    def test_explicit_flags_override_registry(self):
        assert resolve_schedule("fcc", 123, None)[0] == 123
        assert resolve_schedule("fcc", None, 7)[1] == 7
        assert resolve_schedule("starlink", 5, 2) == (5, 2)

    def test_for_environment_applies_schedule_scale(self):
        pipeline = NadaPipeline.for_environment(
            "starlink", config=NadaConfig(num_designs=2,
                                          use_early_stopping=False),
            dataset_scale=0.05, num_chunks=6, seed=0, schedule_scale=0.001)
        evaluation = pipeline.config.evaluation
        assert evaluation.train_epochs == 4       # 4,000 x 0.001
        assert evaluation.checkpoint_interval == 1
        assert evaluation.a2c.entropy_anneal_epochs == 2

    def test_cli_parses_registry_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.train_epochs is None
        assert args.checkpoint_interval is None
        assert args.schedule_scale == DEFAULT_SCHEDULE_SCALE
        args = build_parser().parse_args(["run", "--environment", "all"])
        assert args.environment == "all"


class TestCampaignCLI:
    def test_campaign_subcommand_sweeps_environments(self, tmp_path, capsys):
        store = tmp_path / "store"
        argv = ["campaign", "--environments", "fcc", "starlink",
                "--num-designs", "2", "--dataset-scale", "0.02",
                "--num-chunks", "6", "--train-epochs", "4",
                "--checkpoint-interval", "2", "--num-seeds", "1",
                "--no-early-stopping", "--store", str(store)]
        assert main(argv) == 0
        cold = capsys.readouterr().out
        assert "FCC" in cold and "Starlink" in cold
        assert "misses" in cold

        # Replaying the identical campaign is served from the store.
        assert main(argv) == 0
        warm = capsys.readouterr().out
        assert "0 misses" in warm

    def test_campaign_all_expands_registry(self):
        args = build_parser().parse_args(["campaign"])
        assert args.environments == ["all"]
