"""Tests for the command-line interface."""

import os

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.environment == "fcc"
        assert args.target == "state"
        assert args.llm == "gpt-4"

    def test_invalid_environment_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--environment", "6g"])

    def test_traces_requires_output(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["traces"])


class TestCommands:
    def test_traces_command_writes_files(self, tmp_path, capsys):
        exit_code = main(["traces", "--environment", "starlink",
                          "--scale", "0.2", "--output", str(tmp_path / "out")])
        assert exit_code == 0
        train_files = os.listdir(tmp_path / "out" / "train")
        test_files = os.listdir(tmp_path / "out" / "test")
        assert train_files and test_files
        captured = capsys.readouterr().out
        assert "mean throughput" in captured

    def test_baselines_command_prints_table(self, capsys):
        exit_code = main(["baselines", "--environment", "fcc",
                          "--dataset-scale", "0.01", "--num-chunks", "6",
                          "--policies", "bba", "rate_based"])
        assert exit_code == 0
        captured = capsys.readouterr().out
        assert "bba" in captured and "rate_based" in captured

    def test_run_command_tiny_campaign(self, capsys):
        exit_code = main(["run", "--environment", "fcc", "--num-designs", "3",
                          "--train-epochs", "6", "--checkpoint-interval", "3",
                          "--num-seeds", "1", "--num-chunks", "6",
                          "--dataset-scale", "0.02", "--no-early-stopping",
                          "--show-code"])
        assert exit_code == 0
        captured = capsys.readouterr().out
        assert "original score" in captured


class TestLintCommand:
    def test_lint_defaults_to_self(self):
        args = build_parser().parse_args(["lint"])
        assert args.designs is None
        assert not args.self_check

    def test_designs_and_self_are_exclusive(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["lint", "--designs", "x", "--self"])

    def test_lint_self_is_clean(self, capsys):
        exit_code = main(["lint", "--self"])
        assert exit_code == 0
        captured = capsys.readouterr().out
        assert "contract linter" in captured
        assert "auditor corpus" in captured

    def test_lint_self_json(self, capsys):
        import json

        exit_code = main(["lint", "--self", "--json"])
        assert exit_code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["clean"] is True
        assert payload["selfcheck"]["ok"] is True

    def test_lint_designs_directory(self, tmp_path, capsys):
        import json

        from repro.llm import StateDesignSpace, StateDesignSpec

        (tmp_path / "good.py").write_text(
            StateDesignSpace().render(StateDesignSpec()))
        (tmp_path / "escape.py").write_text(
            "def state_func(*args):\n    return ().__class__.__mro__\n")
        exit_code = main(["lint", "--designs", str(tmp_path), "--json"])
        assert exit_code == 1
        payload = json.loads(capsys.readouterr().out)
        by_file = {entry["file"]: entry for entry in payload["designs"]}
        assert by_file["good.py"]["passed"]
        assert not by_file["escape.py"]["passed"]
        rules = {f["rule"] for f in by_file["escape.py"]["findings"]}
        assert "sandbox.dunder-attribute" in rules

    def test_lint_designs_missing_directory(self, tmp_path):
        assert main(["lint", "--designs", str(tmp_path / "nope")]) == 1
