"""Shared fixtures for the test suite: tiny videos, traces and observations."""

from __future__ import annotations

import numpy as np
import pytest

from repro.abr import LinearQoE, StreamingSession, synthetic_video
from repro.traces import Trace, TraceSet, generate_fcc_trace, generate_starlink_trace


@pytest.fixture
def rng():
    return np.random.default_rng(12345)


@pytest.fixture
def small_video():
    """A short standard-ladder video (12 chunks of 4 s)."""
    return synthetic_video("standard", num_chunks=12, seed=7)


@pytest.fixture
def high_video():
    """A short high-ladder (4G/5G) video."""
    return synthetic_video("high", num_chunks=12, seed=7)


@pytest.fixture
def flat_trace():
    """A perfectly constant 3 Mbps trace, useful for deterministic arithmetic."""
    timestamps = np.arange(0.0, 400.0, 1.0)
    throughputs = np.full_like(timestamps, 3.0)
    return Trace(timestamps, throughputs, name="flat-3mbps")


@pytest.fixture
def slow_trace():
    """A constant 0.4 Mbps trace that forces rebuffering at high bitrates."""
    timestamps = np.arange(0.0, 400.0, 1.0)
    throughputs = np.full_like(timestamps, 0.4)
    return Trace(timestamps, throughputs, name="flat-0.4mbps")


@pytest.fixture
def fcc_traceset():
    traces = [generate_fcc_trace(duration_s=150.0, seed=i, name=f"fcc-{i}")
              for i in range(3)]
    return TraceSet(traces, name="fcc-mini")


@pytest.fixture
def starlink_traceset():
    traces = [generate_starlink_trace(duration_s=150.0, seed=i, name=f"sl-{i}")
              for i in range(3)]
    return TraceSet(traces, name="starlink-mini")


@pytest.fixture
def sample_observation(small_video, flat_trace):
    """A representative observation taken a few chunks into a session."""
    session = StreamingSession(small_video, flat_trace,
                               qoe=LinearQoE(small_video.bitrates_kbps))
    for _ in range(3):
        session.step(1)
    return session.observe()


@pytest.fixture
def fresh_observation(small_video, flat_trace):
    """The observation at the very start of a session (all-zero histories)."""
    session = StreamingSession(small_video, flat_trace)
    return session.observe()
