"""Tests for design training/evaluation and the end-to-end Nada pipeline."""

import numpy as np
import pytest

from repro.abr import synthetic_video
from repro.core import (
    Design,
    DesignKind,
    DesignStatus,
    DesignTrainer,
    EarlyStoppingConfig,
    EvaluationConfig,
    NadaConfig,
    NadaPipeline,
    RewardTrajectoryClassifier,
    TestScoreProtocol,
    instantiate_agent,
)
from repro.llm import NetworkDesignSpace, NetworkDesignSpec, StateDesignSpace, StateDesignSpec
from repro.rl import A2CConfig
from repro.traces import TraceSet, generate_fcc_trace


GOOD_STATE = StateDesignSpace().render(StateDesignSpec(extra_features=("buffer_diff",)))
GOOD_NETWORK = NetworkDesignSpace().render(NetworkDesignSpec(hidden_size=32,
                                                             encoder="flatten"))

FAST_EVAL = EvaluationConfig(train_epochs=8, checkpoint_interval=4,
                             last_k_checkpoints=2, num_seeds=2,
                             a2c=A2CConfig(entropy_anneal_epochs=8))


@pytest.fixture
def tiny_env():
    video = synthetic_video("standard", num_chunks=8, seed=0)
    train = TraceSet([generate_fcc_trace(duration_s=120, seed=i) for i in range(2)],
                     name="train")
    test = TraceSet([generate_fcc_trace(duration_s=120, seed=50)], name="test")
    return video, train, test


class TestInstantiateAgent:
    def test_original_pair(self, tiny_env):
        video, train, _ = tiny_env
        agent = instantiate_agent(None, None, video, train, seed=0)
        assert agent.network.num_actions == video.num_bitrates

    def test_generated_state_changes_input_shape(self, tiny_env):
        video, train, _ = tiny_env
        design = Design(kind="state", code=GOOD_STATE)
        agent = instantiate_agent(design, None, video, train, seed=0)
        assert agent.network.state_shape[0] == 7  # 6 base rows + buffer_diff

    def test_generated_network_used(self, tiny_env):
        video, train, _ = tiny_env
        design = Design(kind="network", code=GOOD_NETWORK)
        agent = instantiate_agent(None, design, video, train, seed=0)
        from repro.abr import GenericActorCritic
        assert isinstance(agent.network, GenericActorCritic)

    def test_kind_mismatch_rejected(self, tiny_env):
        video, train, _ = tiny_env
        state_design = Design(kind="state", code=GOOD_STATE)
        network_design = Design(kind="network", code=GOOD_NETWORK)
        with pytest.raises(ValueError):
            instantiate_agent(network_design, None, video, train)
        with pytest.raises(ValueError):
            instantiate_agent(None, state_design, video, train)


class TestDesignTrainer:
    def test_run_produces_checkpoints_and_rewards(self, tiny_env):
        video, train, test = tiny_env
        trainer = DesignTrainer(video, train, test, config=FAST_EVAL)
        run = trainer.run(None, None, seed=0)
        assert len(run.reward_history) == FAST_EVAL.train_epochs
        assert run.checkpoint_epochs == [4, 8]
        assert len(run.checkpoint_scores) == 2
        assert not run.early_stopped
        assert np.isfinite(run.final_score)
        assert run.smoothed_score(1) == pytest.approx(run.checkpoint_scores[-1])

    def test_run_is_seed_deterministic(self, tiny_env):
        video, train, test = tiny_env
        trainer = DesignTrainer(video, train, test, config=FAST_EVAL)
        a = trainer.run(None, None, seed=3)
        b = trainer.run(None, None, seed=3)
        np.testing.assert_allclose(a.reward_history, b.reward_history)
        np.testing.assert_allclose(a.checkpoint_scores, b.checkpoint_scores)

    def test_early_stopping_truncates_training(self, tiny_env):
        video, train, test = tiny_env

        class AlwaysStop(RewardTrajectoryClassifier):
            def __init__(self):
                super().__init__(EarlyStoppingConfig(reward_prefix_length=3))
                self.threshold = 0.5

            def should_stop(self, reward_prefix):
                return True

        trainer = DesignTrainer(video, train, test, config=FAST_EVAL)
        run = trainer.run(None, None, seed=0, early_stopping=AlwaysStop())
        assert run.early_stopped
        assert len(run.reward_history) == 3  # stopped right after the prefix
        assert run.checkpoint_scores == []

    def test_trainingrun_empty_scores(self):
        from repro.core.evaluation import TrainingRun
        run = TrainingRun(seed=0, reward_history=[], checkpoint_epochs=[],
                          checkpoint_scores=[])
        assert run.final_score == float("-inf")
        assert run.smoothed_score(3) == float("-inf")


class TestTestScoreProtocol:
    def test_score_original_and_design(self, tiny_env):
        video, train, test = tiny_env
        trainer = DesignTrainer(video, train, test, config=FAST_EVAL)
        protocol = TestScoreProtocol(trainer)
        original = protocol.score_original()
        assert np.isfinite(original)

        design = Design(kind="state", code=GOOD_STATE)
        score = protocol.score_design(design)
        assert design.status is DesignStatus.EVALUATED
        assert design.test_score == pytest.approx(score)
        assert len(design.reward_history) == FAST_EVAL.train_epochs
        assert design.metadata["num_seeds"] == FAST_EVAL.num_seeds

    def test_median_across_seeds(self, tiny_env):
        video, train, test = tiny_env
        trainer = DesignTrainer(video, train, test, config=FAST_EVAL)
        protocol = TestScoreProtocol(trainer, seeds=[0, 1, 2])
        score, runs = protocol.run(None, None)
        per_seed = [r.smoothed_score(FAST_EVAL.last_k_checkpoints) for r in runs]
        assert score == pytest.approx(float(np.median(per_seed)))

    def test_requires_at_least_one_seed(self, tiny_env):
        video, train, test = tiny_env
        trainer = DesignTrainer(video, train, test, config=FAST_EVAL)
        with pytest.raises(ValueError):
            TestScoreProtocol(trainer, seeds=[])

    def test_evaluation_config_scaled(self):
        scaled = FAST_EVAL.scaled(2.0)
        assert scaled.train_epochs == 16
        assert scaled.checkpoint_interval == 8
        with pytest.raises(ValueError):
            FAST_EVAL.scaled(0.0)


class TestNadaPipeline:
    def test_end_to_end_state_campaign(self, tiny_env):
        video, train, test = tiny_env
        config = NadaConfig(target="state", num_designs=6, llm="gpt-4",
                            evaluation=FAST_EVAL, use_early_stopping=False, seed=0)
        result = NadaPipeline(video, train, test, config=config).run()
        assert result.filter_report.total == 6
        assert np.isfinite(result.original_score)
        assert result.fully_trained == len(result.pool.surviving_prechecks())
        if result.best_design is not None:
            assert result.best_design.test_score == result.best_score
        summary = result.summary()
        assert "original score" in summary

    def test_pipeline_with_early_stopping_trains_fewer_designs_fully(self, tiny_env):
        video, train, test = tiny_env
        config = NadaConfig(target="state", num_designs=10, llm="gpt-4",
                            evaluation=FAST_EVAL, use_early_stopping=True,
                            bootstrap_fraction=0.5, min_bootstrap_designs=3,
                            early_stopping=EarlyStoppingConfig(
                                reward_prefix_length=4, training_epochs=30,
                                top_fraction=0.2, smoothed_fraction=0.5),
                            seed=0)
        result = NadaPipeline(video, train, test, config=config).run()
        survivors = len(result.pool.surviving_prechecks())
        assert result.fully_trained + len(result.early_stopped_designs) == survivors

    def test_both_targets_generates_two_pools(self, tiny_env):
        video, train, test = tiny_env
        config = NadaConfig(target="both", num_designs=3, evaluation=FAST_EVAL,
                            use_early_stopping=False, seed=1)
        result = NadaPipeline(video, train, test, config=config).run()
        kinds = {d.kind for d in result.pool}
        assert kinds == {DesignKind.STATE, DesignKind.NETWORK}

    def test_config_validation(self):
        with pytest.raises(ValueError):
            NadaConfig(target="protocol")
        with pytest.raises(ValueError):
            NadaConfig(num_designs=0)
        with pytest.raises(ValueError):
            NadaConfig(bootstrap_fraction=0.0)

    def test_for_environment_constructor(self):
        pipeline = NadaPipeline.for_environment(
            "starlink", config=NadaConfig(num_designs=2, evaluation=FAST_EVAL,
                                          use_early_stopping=False),
            dataset_scale=0.05, num_chunks=6, seed=0)
        assert pipeline.video.bitrates_kbps[0] == 300
        assert len(pipeline.train_traces) >= 1

    def test_evaluate_combination(self, tiny_env):
        video, train, test = tiny_env
        config = NadaConfig(evaluation=FAST_EVAL, use_early_stopping=False)
        pipeline = NadaPipeline(video, train, test, config=config)
        state = Design(kind="state", code=GOOD_STATE)
        network = Design(kind="network", code=GOOD_NETWORK)
        score = pipeline.evaluate_combination(state, network)
        assert np.isfinite(score)
