"""Tests for the event-driven fleet harness and the batched serving path.

The central contract: a fleet of N sessions is bit-identical, session for
session, to N independent serial runs over the same traces with the same
policy and RNG discipline — concurrency, batch windows and tick grouping
change wall-clock time only, never results.
"""

import numpy as np
import pytest

from repro.abr import BufferBasedPolicy, synthetic_video
from repro.abr.env import HISTORY_LENGTH
from repro.abr.state import original_state_function, original_states_gathered
from repro.core.results import ResultStore
from repro.emulation import (
    BatchedPolicy,
    EmulationConfig,
    Emulator,
    Fleet,
    FleetConfig,
    LinkConfig,
    PacketDeliveryLink,
    emulation_context_fingerprint,
    emulation_result_key,
    evaluate_policy_emulated,
    policy_fingerprint,
    session_rng,
)
from repro.emulation.link import _SCHEDULE_CACHE
from repro.emulation.player import DashPlayer
from repro.rl.agent import ABRAgent
from repro.traces import Trace, generate_fcc_trace, generate_starlink_trace


def _signature(result):
    """Bitwise comparison key of one session's full record sequence."""
    return [(r.chunk_index, r.bitrate_index, r.reward, r.download_time_s,
             r.rebuffer_s, r.buffer_s) for r in result.records]


@pytest.fixture
def trace_mix():
    """A mixed fcc/starlink trace set exercising both trace shapes."""
    return ([generate_fcc_trace(duration_s=150.0, seed=i, name=f"fcc-{i}")
             for i in range(3)]
            + [generate_starlink_trace(duration_s=150.0, seed=i,
                                       name=f"sl-{i}") for i in range(2)])


@pytest.fixture
def serve_video():
    return synthetic_video("standard", num_chunks=8, seed=7)


@pytest.fixture
def agent(serve_video, trace_mix):
    link = PacketDeliveryLink(trace_mix[0])
    player = DashPlayer(serve_video, link)
    return ABRAgent.original(player.observe(), serve_video.num_bitrates,
                             rng=np.random.default_rng(0))


class TestDeliveryEngines:
    def test_prefix_and_bisect_agree_to_inversion_accuracy(self, trace_mix):
        for trace in trace_mix:
            fast = PacketDeliveryLink(trace, LinkConfig(delivery_engine="prefix"))
            reference = PacketDeliveryLink(trace, LinkConfig(delivery_engine="bisect"))
            rng = np.random.default_rng(3)
            for _ in range(40):
                start = float(rng.uniform(0.0, 300.0))
                num_bytes = float(rng.uniform(1e3, 2e6))
                cap = (None if rng.random() < 0.5
                       else float(rng.uniform(1e4, 1e6)))
                a = fast.time_to_deliver(start, num_bytes, rate_cap_bytes_per_s=cap)
                b = reference.time_to_deliver(start, num_bytes, rate_cap_bytes_per_s=cap)
                assert a == pytest.approx(b, abs=1e-9)

    def test_unknown_engine_rejected(self, trace_mix):
        with pytest.raises(ValueError):
            PacketDeliveryLink(trace_mix[0], LinkConfig(delivery_engine="walk"))

    def test_schedule_cache_shared_between_links(self, trace_mix):
        trace = trace_mix[0]
        first = PacketDeliveryLink(trace, LinkConfig(delivery_engine="prefix"))
        second = PacketDeliveryLink(trace, LinkConfig(delivery_engine="bisect"))
        assert first._cumulative is second._cumulative
        assert trace in _SCHEDULE_CACHE

    def test_throughputs_at_matches_scalar(self, trace_mix):
        for trace in trace_mix:
            times = np.linspace(0.0, trace.duration_s * 2.5, 137)
            vector = trace.throughputs_at(times)
            scalar = np.array([trace.throughput_at(t) for t in times])
            assert np.array_equal(vector, scalar)


class TestGatheredStates:
    def test_matches_serial_state_function_bitwise(self, serve_video, rng):
        n = 7
        ladder = np.asarray(serve_video.bitrates_kbps, dtype=np.float64)
        histories = [rng.uniform(0.0, 10.0, (n, HISTORY_LENGTH))
                     for _ in range(4)]
        next_chunks = rng.integers(0, serve_video.num_chunks, n)
        total = serve_video.num_chunks
        out = np.empty((n, 6, HISTORY_LENGTH))
        original_states_gathered(
            histories[0], histories[1], histories[2], histories[3],
            serve_video.chunk_sizes_bytes[next_chunks],
            total - next_chunks, total, ladder, out)
        for i in range(n):
            expected = original_state_function(
                histories[0][i], histories[1][i], histories[2][i],
                histories[3][i],
                serve_video.chunk_sizes_bytes[next_chunks[i]].copy(),
                int(total - next_chunks[i]), total, ladder)
            assert np.array_equal(out[i], expected)


class TestFleetBitIdentity:
    def test_single_session_matches_emulator_run(self, serve_video, trace_mix,
                                                 agent):
        fleet = Fleet(serve_video, trace_mix[:1])
        fleet_result = fleet.run(agent, num_sessions=1)
        policy = BatchedPolicy(agent, greedy=True)
        serial = Emulator(serve_video).run(policy.serial_policy(0),
                                           trace_mix[0])
        assert _signature(fleet_result.sessions[0]) == _signature(serial)

    def test_fleet_matches_serial_reference_greedy(self, serve_video,
                                                   trace_mix, agent):
        fleet = Fleet(serve_video, trace_mix)
        n = 50
        fleet_result = fleet.run(agent, num_sessions=n)
        reference = fleet.serial_reference(agent, num_sessions=n)
        assert len(fleet_result.sessions) == n
        for got, expected in zip(fleet_result.sessions, reference):
            assert got.trace_name == expected.trace_name
            assert _signature(got) == _signature(expected)

    def test_fleet_matches_serial_reference_stochastic(self, serve_video,
                                                       trace_mix, agent):
        fleet = Fleet(serve_video, trace_mix)
        n = 12
        fleet_result = fleet.run(agent, num_sessions=n, greedy=False,
                                 sample_seed=11)
        reference = fleet.serial_reference(agent, num_sessions=n,
                                           greedy=False, sample_seed=11)
        for got, expected in zip(fleet_result.sessions, reference):
            assert _signature(got) == _signature(expected)

    def test_results_invariant_to_tick_grouping(self, serve_video, trace_mix,
                                                agent):
        wide = Fleet(serve_video, trace_mix, config=FleetConfig(
            arrival_process="instant", batch_window_s=5.0))
        narrow = Fleet(serve_video, trace_mix, config=FleetConfig(
            arrival_process="poisson", arrival_rate_per_s=5.0,
            batch_window_s=0.0))
        a = wide.run(agent, num_sessions=10)
        b = narrow.run(agent, num_sessions=10)
        for x, y in zip(a.sessions, b.sessions):
            assert _signature(x) == _signature(y)
        # Grouping differed even though results did not.
        assert a.metrics.num_ticks != b.metrics.num_ticks
        assert a.metrics.num_decisions == b.metrics.num_decisions

    def test_callable_policy_supported(self, serve_video, trace_mix):
        fleet = Fleet(serve_video, trace_mix)
        fleet_result = fleet.run(BufferBasedPolicy(), num_sessions=6)
        reference = fleet.serial_reference(BufferBasedPolicy(), num_sessions=6)
        for got, expected in zip(fleet_result.sessions, reference):
            assert _signature(got) == _signature(expected)

    def test_serving_metrics_populated(self, serve_video, trace_mix, agent):
        fleet = Fleet(serve_video, trace_mix)
        metrics = fleet.run(agent, num_sessions=10).metrics
        assert metrics.num_sessions == 10
        assert metrics.num_decisions == 10 * serve_video.num_chunks
        assert metrics.num_ticks <= metrics.num_decisions
        assert metrics.mean_batch_size >= 1.0
        assert metrics.decisions_per_s > 0
        assert metrics.sessions_per_s > 0
        assert (0.0 <= metrics.p50_decision_latency_s
                <= metrics.p95_decision_latency_s
                <= metrics.p99_decision_latency_s)


class TestBatchedPolicy:
    def test_batched_probs_match_per_observation(self, serve_video, trace_mix,
                                                 agent):
        # BLAS may pick different kernels for batch-1 vs batch-k GEMMs, so
        # row probabilities agree to the final ulp rather than bitwise; the
        # selected actions must be identical (end-to-end session bit-identity
        # is pinned by TestFleetBitIdentity and the serving bench gate).
        players = [DashPlayer(serve_video, PacketDeliveryLink(t))
                   for t in trace_mix]
        observations = [p.observe() for p in players]
        states = np.stack([agent.state_of(o) for o in observations])
        batched = agent.batch_action_probabilities(states)
        for i, obs in enumerate(observations):
            single = agent.action_probabilities(agent.state_of(obs))
            np.testing.assert_allclose(batched[i], single, rtol=0, atol=1e-14)
            assert np.argmax(batched[i]) == np.argmax(single)

    def test_act_batch_matches_serial_act(self, serve_video, trace_mix, agent):
        players = [DashPlayer(serve_video, PacketDeliveryLink(t))
                   for t in trace_mix]
        observations = [p.observe() for p in players]
        batched = agent.act_batch(observations, greedy=True)
        serial = [agent.act(obs, greedy=True) for obs in observations]
        assert batched == serial

    def test_stochastic_rng_discipline(self, serve_video, trace_mix, agent):
        player = DashPlayer(serve_video, PacketDeliveryLink(trace_mix[0]))
        obs = player.observe()
        rngs = [session_rng(5, i) for i in range(3)]
        batched = agent.act_batch([obs] * 3, greedy=False, rngs=rngs)
        expected = []
        for i in range(3):
            rng = session_rng(5, i)
            from repro.rl.policy import sample_action
            probs = agent.action_probabilities(agent.state_of(obs))
            expected.append(sample_action(probs, rng))
        assert batched == expected

    def test_policy_probs_batch_requires_batch_axis(self):
        from repro.abr.networks import GenericActorCritic
        from repro.nn.compile import plan_for

        network = GenericActorCritic((6, HISTORY_LENGTH), 6,
                                     rng=np.random.default_rng(0))
        plan = plan_for(network)
        if plan is None:
            pytest.skip("compilation disabled")
        state = np.zeros((6, HISTORY_LENGTH))
        with pytest.raises(ValueError):
            plan.policy_probs_batch(state)
        batch = plan.policy_probs_batch(state[None, ...])
        assert batch.shape == (1, 6)

    def test_rejects_non_policy(self):
        with pytest.raises(TypeError):
            BatchedPolicy(42)


class TestFleetConfigValidation:
    def test_rejects_bad_arrival_process(self):
        with pytest.raises(ValueError):
            FleetConfig(arrival_process="flood")

    def test_rejects_bad_batch_window(self):
        with pytest.raises(ValueError):
            FleetConfig(batch_window_s=-1.0)

    def test_rejects_empty_fleet(self, serve_video, trace_mix, agent):
        with pytest.raises(ValueError):
            Fleet(serve_video, [])
        with pytest.raises(ValueError):
            Fleet(serve_video, trace_mix).run(agent, num_sessions=0)


class TestEmulationStore:
    def test_warm_replay_matches_cold_run(self, serve_video, trace_mix, agent,
                                          tmp_path):
        store = ResultStore(str(tmp_path))
        cold = evaluate_policy_emulated(agent, serve_video, trace_mix,
                                        store=store, environment="mix")
        assert store.puts == len(trace_mix)
        warm = evaluate_policy_emulated(agent, serve_video, trace_mix,
                                        store=store, environment="mix")
        assert warm == cold
        assert store.hits == len(trace_mix)

    def test_store_path_matches_serial_path(self, serve_video, trace_mix,
                                            agent, tmp_path):
        store = ResultStore(str(tmp_path))
        stored = evaluate_policy_emulated(agent, serve_video, trace_mix,
                                          store=store)
        serial = evaluate_policy_emulated(agent, serve_video, trace_mix)
        assert stored == serial

    def test_stochastic_records_independent_of_cold_subset(
            self, serve_video, trace_mix, agent, tmp_path):
        # Warm traces 0-1 first, then sweep all: traces 2+ are emulated in a
        # different fleet composition, yet every record must match the
        # all-cold sweep exactly.
        partial = ResultStore(str(tmp_path / "partial"))
        evaluate_policy_emulated(agent, serve_video, trace_mix[:2],
                                 store=partial, greedy=False, sample_seed=3)
        mixed = evaluate_policy_emulated(agent, serve_video, trace_mix,
                                         store=partial, greedy=False,
                                         sample_seed=3)
        cold = evaluate_policy_emulated(agent, serve_video, trace_mix,
                                        store=ResultStore(str(tmp_path / "cold")),
                                        greedy=False, sample_seed=3)
        assert mixed == cold

    def test_unfingerprintable_policy_bypasses_store(self, serve_video,
                                                     trace_mix, tmp_path):
        store = ResultStore(str(tmp_path))
        score = evaluate_policy_emulated(BufferBasedPolicy(), serve_video,
                                         trace_mix[:2], store=store)
        assert np.isfinite(score)
        assert store.puts == 0
        assert policy_fingerprint(BufferBasedPolicy()) is None

    def test_delivery_engine_is_key_material(self, serve_video):
        prefix = emulation_context_fingerprint(
            serve_video, config=EmulationConfig(
                link=LinkConfig(delivery_engine="prefix")))
        bisect = emulation_context_fingerprint(
            serve_video, config=EmulationConfig(
                link=LinkConfig(delivery_engine="bisect")))
        assert prefix != bisect

    def test_key_depends_on_weights_and_discipline(self, serve_video,
                                                   trace_mix, agent):
        context = emulation_context_fingerprint(serve_video)
        fp = policy_fingerprint(agent)
        assert fp is not None
        greedy = emulation_result_key(context, fp, trace_mix[0], greedy=True)
        sampled = emulation_result_key(context, fp, trace_mix[0], greedy=False,
                                       sample_seed=1)
        other_trace = emulation_result_key(context, fp, trace_mix[1],
                                           greedy=True)
        assert len({greedy, sampled, other_trace}) == 3
        # Perturbing a weight changes the policy fingerprint.
        params = agent.network.parameters()
        params[0].data = params[0].data + 1.0
        assert policy_fingerprint(agent) != fp


class TestPayloadStore:
    def test_put_get_roundtrip(self, tmp_path):
        store = ResultStore(str(tmp_path))
        assert store.get_payload("a" * 64) is None
        assert store.put_payload("a" * 64, {"x": 1.5})
        assert store.get_payload("a" * 64) == {"x": 1.5}
        # First writer wins; duplicate put is dropped.
        assert not store.put_payload("a" * 64, {"x": 2.0})
        assert store.get_payload("a" * 64) == {"x": 1.5}

    def test_malformed_payload_quarantined(self, tmp_path):
        store = ResultStore(str(tmp_path))
        key = "b" * 64
        store.put_payload(key, {"x": 1})
        path = store._path(key)
        with open(path, "w", encoding="utf-8") as handle:
            handle.write("{not json")
        assert store.peek_payload(key) is None
        assert store.corrupt == 1

    def test_rejects_non_dict_payload(self, tmp_path):
        with pytest.raises(TypeError):
            ResultStore(str(tmp_path)).put_payload("c" * 64, [1, 2])
