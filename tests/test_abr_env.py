"""Tests for the chunk-level simulator and the streaming-session layer."""

import numpy as np
import pytest

from repro.abr import (
    ChunkLevelSimulator,
    FixedBitratePolicy,
    HISTORY_LENGTH,
    LinearQoE,
    SimulatorConfig,
    StreamingSession,
    run_session,
    synthetic_video,
)
from repro.traces import Trace


class TestChunkLevelSimulator:
    def test_download_time_matches_flat_link(self, small_video, flat_trace):
        sim = ChunkLevelSimulator(small_video, flat_trace,
                                  config=SimulatorConfig(link_rtt_s=0.0,
                                                         payload_fraction=1.0))
        result = sim.step(0)
        expected = result.chunk_size_bytes * 8 / (3.0 * 1e6)
        assert result.download_time_s == pytest.approx(expected, rel=1e-6)

    def test_rtt_added_to_download_time(self, small_video, flat_trace):
        config = SimulatorConfig(link_rtt_s=0.5, payload_fraction=1.0)
        sim = ChunkLevelSimulator(small_video, flat_trace, config=config)
        result = sim.step(0)
        base = result.chunk_size_bytes * 8 / (3.0 * 1e6)
        assert result.download_time_s == pytest.approx(base + 0.5, rel=1e-6)

    def test_rebuffering_on_slow_link(self, small_video, slow_trace):
        sim = ChunkLevelSimulator(small_video, slow_trace)
        result = sim.step(5)  # highest bitrate on a 0.4 Mbps link
        assert result.rebuffer_s > 0
        # Buffer after the first chunk equals one chunk duration.
        assert result.buffer_s == pytest.approx(small_video.chunk_duration_s)

    def test_no_rebuffering_on_fast_link_after_warmup(self, small_video, flat_trace):
        sim = ChunkLevelSimulator(small_video, flat_trace)
        sim.step(0)
        second = sim.step(0)
        assert second.rebuffer_s == 0.0

    def test_buffer_accumulates_and_is_capped(self, flat_trace):
        video = synthetic_video("standard", num_chunks=40, seed=0)
        config = SimulatorConfig(max_buffer_s=20.0)
        sim = ChunkLevelSimulator(video, flat_trace, config=config)
        buffers = [sim.step(0).buffer_s for _ in range(30)]
        assert max(buffers) <= config.max_buffer_s + video.chunk_duration_s
        assert any(sim_step > 0 for sim_step in buffers)

    def test_sleep_when_buffer_full(self, flat_trace):
        video = synthetic_video("standard", num_chunks=40, seed=0)
        config = SimulatorConfig(max_buffer_s=12.0)
        sim = ChunkLevelSimulator(video, flat_trace, config=config)
        sleeps = [sim.step(0).sleep_s for _ in range(30)]
        assert any(s > 0 for s in sleeps)

    def test_completion_and_reset(self, small_video, flat_trace):
        sim = ChunkLevelSimulator(small_video, flat_trace)
        for _ in range(small_video.num_chunks):
            sim.step(0)
        assert sim.finished
        with pytest.raises(RuntimeError):
            sim.step(0)
        sim.reset()
        assert not sim.finished
        assert sim.remaining_chunks == small_video.num_chunks

    def test_invalid_bitrate_index(self, small_video, flat_trace):
        sim = ChunkLevelSimulator(small_video, flat_trace)
        with pytest.raises(IndexError):
            sim.step(99)

    def test_measured_throughput_close_to_link_rate(self, small_video, flat_trace):
        config = SimulatorConfig(link_rtt_s=0.0, payload_fraction=1.0)
        sim = ChunkLevelSimulator(small_video, flat_trace, config=config)
        result = sim.step(3)
        assert result.throughput_mbps == pytest.approx(3.0, rel=1e-3)

    def test_bandwidth_noise_changes_results(self, small_video, flat_trace):
        noisy = SimulatorConfig(bandwidth_noise_std=0.3)
        sim_a = ChunkLevelSimulator(small_video, flat_trace, config=noisy,
                                    rng=np.random.default_rng(1))
        sim_b = ChunkLevelSimulator(small_video, flat_trace, config=noisy,
                                    rng=np.random.default_rng(2))
        a = [sim_a.step(2).download_time_s for _ in range(5)]
        b = [sim_b.step(2).download_time_s for _ in range(5)]
        assert a != b

    def test_start_offset_changes_trace_position(self, small_video):
        # A trace that is fast in the first half and slow in the second half.
        timestamps = np.arange(0.0, 200.0, 1.0)
        throughputs = np.where(timestamps < 100.0, 10.0, 0.5)
        trace = Trace(timestamps, throughputs, name="two-phase")
        fast = ChunkLevelSimulator(small_video, trace)
        slow = ChunkLevelSimulator(small_video, trace)
        slow.reset(start_offset_s=100.0)
        assert slow.step(3).download_time_s > fast.step(3).download_time_s


class TestStreamingSession:
    def test_observation_shapes_and_padding(self, small_video, flat_trace):
        session = StreamingSession(small_video, flat_trace)
        obs = session.observe()
        assert obs.throughput_mbps_history.shape == (HISTORY_LENGTH,)
        assert np.all(obs.throughput_mbps_history == 0.0)
        assert obs.remaining_chunks == small_video.num_chunks
        assert obs.total_chunks == small_video.num_chunks
        assert obs.next_chunk_sizes_bytes.shape == (small_video.num_bitrates,)

    def test_history_rolls_oldest_first(self, small_video, flat_trace):
        session = StreamingSession(small_video, flat_trace)
        for index in range(3):
            session.step(index)
        obs = session.observe()
        # The last three entries are the kbps of actions 0, 1, 2 in order.
        expected = [small_video.bitrates_kbps[i] for i in range(3)]
        np.testing.assert_allclose(obs.bitrate_kbps_history[-3:], expected)
        assert obs.last_bitrate_index == 2

    def test_rewards_match_qoe(self, small_video, flat_trace):
        qoe = LinearQoE(small_video.bitrates_kbps)
        session = StreamingSession(small_video, flat_trace, qoe=qoe)
        record, _ = session.step(2)
        # The first chunk's wait is startup delay, not rebuffering, for QoE.
        assert record.reward == pytest.approx(qoe.chunk_reward(2, 0.0, None))
        record2, _ = session.step(4)
        assert record2.reward == pytest.approx(
            qoe.chunk_reward(4, record2.rebuffer_s, 2))

    def test_startup_rebuffering_can_be_charged(self, small_video, flat_trace):
        qoe = LinearQoE(small_video.bitrates_kbps)
        session = StreamingSession(small_video, flat_trace, qoe=qoe,
                                   charge_startup_rebuffering=True)
        record, _ = session.step(2)
        assert record.rebuffer_s > 0.0
        assert record.reward == pytest.approx(
            qoe.chunk_reward(2, record.rebuffer_s, None))

    def test_session_runs_to_completion(self, small_video, flat_trace):
        session = StreamingSession(small_video, flat_trace)
        steps = 0
        while not session.done:
            session.observe()
            session.step(1)
            steps += 1
        assert steps == small_video.num_chunks
        with pytest.raises(RuntimeError):
            session.observe()

    def test_observation_copy_is_independent(self, sample_observation):
        copy = sample_observation.copy()
        copy.throughput_mbps_history[:] = -1
        assert not np.array_equal(copy.throughput_mbps_history,
                                  sample_observation.throughput_mbps_history)


class TestRunSession:
    def test_run_session_with_fixed_policy(self, small_video, flat_trace):
        result = run_session(FixedBitratePolicy(2), small_video, flat_trace)
        assert result.num_chunks == small_video.num_chunks
        assert result.mean_bitrate_kbps == pytest.approx(
            small_video.bitrates_kbps[2])
        assert result.bitrate_switches == 0

    def test_session_result_aggregates(self, small_video, slow_trace):
        result = run_session(FixedBitratePolicy(5), small_video, slow_trace)
        assert result.total_rebuffer_s > 0
        assert result.total_reward == pytest.approx(
            sum(r.reward for r in result.records))
        assert result.mean_reward == pytest.approx(
            result.total_reward / result.num_chunks)

    def test_higher_bitrate_on_fast_link_scores_better(self, small_video, flat_trace):
        low = run_session(FixedBitratePolicy(0), small_video, flat_trace)
        # 1200 kbps still fits comfortably in 3 Mbps.
        mid = run_session(FixedBitratePolicy(2), small_video, flat_trace)
        assert mid.mean_reward > low.mean_reward

    def test_highest_bitrate_on_slow_link_scores_worse(self, small_video, slow_trace):
        low = run_session(FixedBitratePolicy(0), small_video, slow_trace)
        high = run_session(FixedBitratePolicy(5), small_video, slow_trace)
        assert low.mean_reward > high.mean_reward
