"""Tests for neural-network layers, modules and initializers."""

import numpy as np
import pytest

from repro import nn
from repro.nn import init as initializers


class TestInitializers:
    def test_xavier_uniform_bounds(self):
        w = initializers.xavier_uniform((50, 60), rng=np.random.default_rng(0))
        limit = np.sqrt(6.0 / 110)
        assert w.shape == (50, 60)
        assert np.all(np.abs(w) <= limit + 1e-12)

    def test_xavier_normal_scale(self):
        w = initializers.xavier_normal((200, 300), rng=np.random.default_rng(0))
        expected_std = np.sqrt(2.0 / 500)
        assert w.std() == pytest.approx(expected_std, rel=0.1)

    def test_he_normal_scale(self):
        w = initializers.he_normal((400, 100), rng=np.random.default_rng(0))
        assert w.std() == pytest.approx(np.sqrt(2.0 / 400), rel=0.1)

    @pytest.mark.parametrize("shape", [(8, 8), (16, 4), (4, 16), (6, 18)])
    def test_orthogonal_produces_orthonormal_rows_or_columns(self, shape):
        w = initializers.orthogonal(shape, rng=np.random.default_rng(0))
        assert w.shape == shape
        rows, cols = shape
        if rows <= cols:
            gram = w @ w.T
            np.testing.assert_allclose(gram, np.eye(rows), atol=1e-8)
        else:
            gram = w.T @ w
            np.testing.assert_allclose(gram, np.eye(cols), atol=1e-8)

    def test_orthogonal_requires_2d(self):
        with pytest.raises(ValueError):
            initializers.orthogonal((5,))

    def test_zeros_init(self):
        assert np.all(initializers.zeros_init((3, 3)) == 0)

    def test_conv_kernel_fans(self):
        w = initializers.xavier_uniform((8, 4, 3), rng=np.random.default_rng(0))
        assert w.shape == (8, 4, 3)


class TestDense:
    def test_output_shape(self):
        layer = nn.Dense(4, 7, rng=np.random.default_rng(0))
        out = layer(nn.tensor(np.ones((3, 4))))
        assert out.shape == (3, 7)

    def test_activation_applied(self):
        layer = nn.Dense(2, 3, activation="relu", rng=np.random.default_rng(0))
        out = layer(nn.tensor(np.full((5, 2), -100.0)))
        # With a large negative input and zero bias, ReLU clamps everything to >= 0.
        assert np.all(out.numpy() >= 0)

    def test_no_bias(self):
        layer = nn.Dense(3, 2, bias=False)
        assert layer.bias is None
        assert len(layer.parameters()) == 1

    def test_gradients_flow_to_weight_and_bias(self):
        layer = nn.Dense(3, 2, rng=np.random.default_rng(0))
        out = layer(nn.tensor(np.ones((4, 3))))
        out.sum().backward()
        assert layer.weight.grad is not None
        assert layer.bias.grad is not None
        np.testing.assert_allclose(layer.bias.grad, np.full(2, 4.0))

    def test_unknown_activation_raises(self):
        with pytest.raises(KeyError):
            nn.Dense(2, 2, activation="does-not-exist")


class TestConv1D:
    def test_output_shape(self):
        conv = nn.Conv1D(2, 5, kernel_size=3, rng=np.random.default_rng(0))
        out = conv(nn.tensor(np.ones((4, 2, 8))))
        assert out.shape == (4, 5, 6)

    def test_2d_input_treated_as_single_channel(self):
        conv = nn.Conv1D(1, 3, kernel_size=4, rng=np.random.default_rng(0))
        out = conv(nn.tensor(np.ones((2, 8))))
        assert out.shape == (2, 3, 5)

    def test_matches_manual_convolution(self):
        rng = np.random.default_rng(1)
        conv = nn.Conv1D(1, 1, kernel_size=3, bias=False, rng=rng)
        signal = rng.normal(size=(1, 1, 6))
        out = conv(nn.tensor(signal)).numpy()[0, 0]
        kernel = conv.weight.data[0, 0]
        expected = [float(np.dot(signal[0, 0, i:i + 3], kernel)) for i in range(4)]
        np.testing.assert_allclose(out, expected, atol=1e-12)

    def test_stride(self):
        conv = nn.Conv1D(1, 2, kernel_size=2, stride=2, rng=np.random.default_rng(0))
        out = conv(nn.tensor(np.ones((1, 1, 8))))
        assert out.shape == (1, 2, 4)

    def test_gradients_reach_weights(self):
        conv = nn.Conv1D(2, 3, kernel_size=3, rng=np.random.default_rng(0))
        out = conv(nn.tensor(np.random.default_rng(0).normal(size=(2, 2, 7))))
        out.sum().backward()
        assert conv.weight.grad is not None
        assert conv.weight.grad.shape == conv.weight.data.shape
        assert conv.bias.grad is not None

    def test_wrong_channel_count_raises(self):
        conv = nn.Conv1D(3, 2, kernel_size=2)
        with pytest.raises(ValueError):
            conv(nn.tensor(np.ones((1, 2, 5))))

    def test_too_short_input_raises(self):
        conv = nn.Conv1D(1, 2, kernel_size=5)
        with pytest.raises(ValueError):
            conv(nn.tensor(np.ones((1, 1, 3))))


class TestRecurrentCells:
    def test_rnn_cell_shapes(self):
        cell = nn.RNNCell(4, 6, rng=np.random.default_rng(0))
        h = cell(nn.tensor(np.ones((3, 4))), cell.initial_state(3))
        assert h.shape == (3, 6)
        assert np.all(np.abs(h.numpy()) <= 1.0)

    def test_gru_cell_shapes(self):
        cell = nn.GRUCell(4, 5, rng=np.random.default_rng(0))
        h = cell(nn.tensor(np.ones((2, 4))), cell.initial_state(2))
        assert h.shape == (2, 5)

    def test_lstm_cell_shapes(self):
        cell = nn.LSTMCell(3, 5, rng=np.random.default_rng(0))
        h0, c0 = cell.initial_state(2)
        h1, c1 = cell(nn.tensor(np.ones((2, 3))), h0, c0)
        assert h1.shape == (2, 5)
        assert c1.shape == (2, 5)

    def test_gru_zero_state_from_zero_input_stays_bounded(self):
        cell = nn.GRUCell(2, 3, rng=np.random.default_rng(0))
        h = cell(nn.tensor(np.zeros((1, 2))), cell.initial_state(1))
        assert np.all(np.isfinite(h.numpy()))

    @pytest.mark.parametrize("cell_type", ["rnn", "gru", "lstm"])
    def test_recurrent_wrapper_final_state(self, cell_type):
        layer = nn.Recurrent(3, 8, cell_type=cell_type, rng=np.random.default_rng(0))
        out = layer(nn.tensor(np.random.default_rng(0).normal(size=(4, 3, 6))))
        assert out.shape == (4, 8)

    def test_recurrent_wrapper_2d_input(self):
        layer = nn.Recurrent(1, 4, cell_type="gru", rng=np.random.default_rng(0))
        out = layer(nn.tensor(np.ones((2, 5))))
        assert out.shape == (2, 4)

    def test_recurrent_unknown_cell_raises(self):
        with pytest.raises(ValueError):
            nn.Recurrent(2, 3, cell_type="transformer")

    def test_recurrent_gradients_flow(self):
        layer = nn.Recurrent(2, 4, cell_type="lstm", rng=np.random.default_rng(0))
        out = layer(nn.tensor(np.random.default_rng(1).normal(size=(2, 2, 5))))
        out.sum().backward()
        for param in layer.parameters():
            assert param.grad is not None


class TestContainersAndUtilities:
    def test_sequential_applies_in_order(self):
        model = nn.Sequential(
            nn.Dense(3, 4, activation="relu", rng=np.random.default_rng(0)),
            nn.Dense(4, 2, rng=np.random.default_rng(1)),
        )
        out = model(nn.tensor(np.ones((5, 3))))
        assert out.shape == (5, 2)
        assert len(model) == 2
        assert len(list(iter(model))) == 2

    def test_sequential_append(self):
        model = nn.Sequential(nn.Dense(2, 2))
        model.append(nn.Dense(2, 3))
        assert len(model) == 2

    def test_flatten(self):
        out = nn.Flatten()(nn.tensor(np.ones((2, 3, 4))))
        assert out.shape == (2, 12)

    def test_dropout_eval_mode_is_identity(self):
        layer = nn.Dropout(0.9, rng=np.random.default_rng(0))
        layer.eval()
        data = np.ones((4, 4))
        np.testing.assert_allclose(layer(nn.tensor(data)).numpy(), data)

    def test_dropout_train_mode_zeroes_entries(self):
        layer = nn.Dropout(0.5, rng=np.random.default_rng(0))
        layer.train()
        out = layer(nn.tensor(np.ones((100,)))).numpy()
        assert np.any(out == 0.0)
        # Inverted dropout rescales survivors.
        assert np.all(np.isclose(out, 0.0) | np.isclose(out, 2.0))

    def test_dropout_invalid_rate(self):
        with pytest.raises(ValueError):
            nn.Dropout(1.0)

    def test_layernorm_normalizes_last_axis(self):
        layer = nn.LayerNorm(6)
        data = np.random.default_rng(0).normal(loc=5.0, scale=3.0, size=(4, 6))
        out = layer(nn.tensor(data)).numpy()
        np.testing.assert_allclose(out.mean(axis=-1), np.zeros(4), atol=1e-6)
        np.testing.assert_allclose(out.std(axis=-1), np.ones(4), atol=1e-2)

    def test_module_num_parameters(self):
        model = nn.Dense(10, 5)
        assert model.num_parameters() == 10 * 5 + 5

    def test_parameters_deduplicated_for_shared_modules(self):
        shared = nn.Dense(3, 3)
        container = nn.Sequential(shared, shared)
        assert len(container.parameters()) == 2  # weight + bias only once

    def test_zero_grad_clears_all(self):
        model = nn.Sequential(nn.Dense(2, 2), nn.Dense(2, 1))
        out = model(nn.tensor(np.ones((1, 2))))
        out.sum().backward()
        assert any(p.grad is not None for p in model.parameters())
        model.zero_grad()
        assert all(p.grad is None for p in model.parameters())

    def test_train_eval_propagates(self):
        model = nn.Sequential(nn.Dropout(0.5), nn.Dense(2, 2))
        model.eval()
        assert not model.modules[0]._training
        model.train()
        assert model.modules[0]._training


class TestStateDict:
    def test_state_dict_roundtrip(self):
        model = nn.Sequential(
            nn.Dense(3, 4, rng=np.random.default_rng(0)),
            nn.Dense(4, 2, rng=np.random.default_rng(1)),
        )
        state = model.state_dict()
        clone = nn.Sequential(
            nn.Dense(3, 4, rng=np.random.default_rng(5)),
            nn.Dense(4, 2, rng=np.random.default_rng(6)),
        )
        clone.load_state_dict(state)
        data = np.random.default_rng(2).normal(size=(3, 3))
        np.testing.assert_allclose(model(nn.tensor(data)).numpy(),
                                   clone(nn.tensor(data)).numpy())

    def test_load_missing_key_raises(self):
        model = nn.Dense(2, 2)
        with pytest.raises(KeyError):
            model.load_state_dict({})

    def test_state_dict_contains_nested_paths(self):
        model = nn.Sequential(nn.Dense(2, 2), nn.Dense(2, 2))
        keys = model.state_dict().keys()
        assert any("modules.0" in key for key in keys)
        assert any("modules.1" in key for key in keys)
