"""Equivalence and property tests for the performance engine.

Covers the two layers of the vectorized/parallel evaluation engine:

* prefix-sum downloads == segment-walk downloads (random traces, offsets,
  noise, zero-throughput segments, multi-cycle wraps);
* serial TestScoreProtocol == parallel TestScoreProtocol, bit for bit;
* batched greedy evaluation == serial greedy evaluation;
* the fused analytic A2C update == the autograd update;
* vectorized discounted returns == the scalar recurrence;
* the dtype knob, the exact download-termination bound, and the
  ``TrainingRun.final_score`` last-k semantics.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import nn
from repro.abr.env import ChunkLevelSimulator, SimulatorConfig
from repro.abr.networks import (GenericActorCritic, PensieveNetwork,
                                fast_inference_enabled, set_fast_inference)
from repro.abr.state import StateFunction
from repro.abr.video import synthetic_video
from repro.analysis.experiments import ExperimentScale, build_environment
from repro.core.evaluation import DesignTrainer, TestScoreProtocol, TrainingRun
from repro.core.parallel import ParallelConfig, effective_workers, parallel_map
from repro.rl.a2c import A2CTrainer, evaluate_agent, evaluate_agent_batched
from repro.rl.agent import ABRAgent
from repro.rl.rollout import discounted_returns
from repro.traces.base import Trace, TraceSet


def _random_trace(rng: np.random.Generator, index: int) -> Trace:
    n = int(rng.integers(4, 50))
    gaps = rng.uniform(0.05, 5.0, size=n - 1)
    times = rng.uniform(0.0, 3.0) + np.concatenate([[0.0], np.cumsum(gaps)])
    throughputs = rng.uniform(0.2, 8.0, size=n)
    if index % 3 == 0:
        # A minority of dead segments exercises the throughput floor.
        throughputs[rng.choice(n, size=n // 4, replace=False)] = 0.0
    return Trace(times, throughputs, name=f"random-{index}")


class TestDownloadEngineEquivalence:
    def test_prefix_sum_matches_segment_walk(self):
        """Property: both engines compute the same download time from the
        same simulator state, across random traces, offsets, noise and
        chunk sizes."""
        rng = np.random.default_rng(1234)
        video = synthetic_video("standard", num_chunks=8, seed=3)
        for index in range(25):
            trace = _random_trace(rng, index)
            fast = ChunkLevelSimulator(
                video, trace, config=SimulatorConfig(download_engine="prefix_sum"))
            slow = ChunkLevelSimulator(
                video, trace, config=SimulatorConfig(download_engine="segment_walk"))
            for _ in range(12):
                offset = float(rng.uniform(0, trace.duration_s))
                noise = float(rng.uniform(0.3, 1.7)) if index % 4 == 0 else 1.0
                chunk_bytes = float(rng.uniform(1e3, 5e6))
                fast.reset(start_offset_s=offset)
                slow.reset(start_offset_s=offset)
                time_fast = fast._download(chunk_bytes, noise)
                time_slow = slow._download(chunk_bytes, noise)
                assert time_fast == pytest.approx(time_slow, rel=1e-9), (
                    trace.name, offset, noise, chunk_bytes)

    def test_multi_cycle_download_wraps_exactly(self):
        """A chunk larger than one replay cycle wraps and still agrees."""
        video = synthetic_video("standard", num_chunks=4, seed=0)
        trace = Trace([0.0, 5.0, 10.0], [0.001, 0.0, 0.002], name="dead-link")
        fast = ChunkLevelSimulator(
            video, trace, config=SimulatorConfig(download_engine="prefix_sum"))
        slow = ChunkLevelSimulator(
            video, trace, config=SimulatorConfig(download_engine="segment_walk"))
        fast.reset(start_offset_s=2.0)
        slow.reset(start_offset_s=2.0)
        assert fast._download(1e4, 1.0) == pytest.approx(
            slow._download(1e4, 1.0), rel=1e-9)

    def test_flat_trace_closed_form(self):
        """On a constant link the prefix engine is exactly bytes/rate."""
        video = synthetic_video("standard", num_chunks=4, seed=0)
        timestamps = np.arange(0.0, 100.0, 1.0)
        trace = Trace(timestamps, np.full_like(timestamps, 4.0), name="flat")
        sim = ChunkLevelSimulator(
            video, trace, config=SimulatorConfig(download_engine="prefix_sum"))
        chunk_bytes = 1e6
        expected = chunk_bytes / (4.0 * 1e6 / 8.0 * sim.config.payload_fraction)
        assert sim._download(chunk_bytes, 1.0) == pytest.approx(expected, rel=1e-12)

    def test_full_episode_equivalence(self):
        """Stepping whole sessions in lockstep (states re-synced) agrees."""
        rng = np.random.default_rng(7)
        video = synthetic_video("standard", num_chunks=10, seed=2)
        trace = _random_trace(rng, 1)
        fast = ChunkLevelSimulator(
            video, trace, config=SimulatorConfig(download_engine="prefix_sum"))
        slow = ChunkLevelSimulator(
            video, trace, config=SimulatorConfig(download_engine="segment_walk"))
        for chunk in range(video.num_chunks):
            bitrate = int(rng.integers(0, video.num_bitrates))
            result_fast = fast.step(bitrate)
            result_slow = slow.step(bitrate)
            assert result_fast.download_time_s == pytest.approx(
                result_slow.download_time_s, rel=1e-9)
            # Re-sync: the buffer-full sleep quantization can amplify float
            # round-off into divergent trajectories; the per-step contract is
            # what the engines guarantee.
            slow._time_in_trace_s = fast._time_in_trace_s
            slow._buffer_s = fast._buffer_s

    def test_unknown_engine_rejected(self):
        video = synthetic_video("standard", num_chunks=4, seed=0)
        trace = Trace([0.0, 1.0, 2.0], [1.0, 1.0, 1.0])
        sim = ChunkLevelSimulator(
            video, trace, config=SimulatorConfig(download_engine="bogus"))
        with pytest.raises(ValueError, match="bogus"):
            sim.step(0)


class TestDownloadTerminationBound:
    def test_error_names_trace_when_walk_cannot_finish(self, monkeypatch):
        """If the walk stops making progress the exact bound trips with a
        descriptive error naming the trace."""
        video = synthetic_video("standard", num_chunks=4, seed=0)
        trace = Trace([0.0, 1.0, 2.0], [1.0, 1.0, 1.0], name="stuck-trace")
        sim = ChunkLevelSimulator(
            video, trace, config=SimulatorConfig(download_engine="segment_walk"))
        monkeypatch.setattr(
            ChunkLevelSimulator, "_segment_view", lambda self: (1.0, 1e-12))
        with pytest.raises(RuntimeError, match="stuck-trace"):
            sim._download(1e6, 1.0)

    def test_bound_is_generous_for_legitimate_downloads(self):
        """Normal downloads never trip the bound, even multi-cycle ones."""
        video = synthetic_video("standard", num_chunks=4, seed=0)
        trace = Trace([0.0, 1.0, 2.0], [0.05, 0.05, 0.05], name="slow")
        sim = ChunkLevelSimulator(
            video, trace, config=SimulatorConfig(download_engine="segment_walk"))
        assert sim._download(5e5, 1.0) > 0

    def test_dead_link_fails_fast_instead_of_walking(self):
        """An effectively dead link raises immediately (naming the trace)
        rather than spending minutes walking tens of millions of segments."""
        video = synthetic_video("standard", num_chunks=4, seed=0)
        trace = Trace([0.0, 1.0, 2.0], [0.0, 0.0, 0.0], name="all-zero")
        sim = ChunkLevelSimulator(
            video, trace, config=SimulatorConfig(download_engine="segment_walk"))
        with pytest.raises(RuntimeError, match="all-zero"):
            sim._download(5e6, 1.0)
        # The prefix-sum engine resolves the same download in closed form.
        fast = ChunkLevelSimulator(
            video, trace, config=SimulatorConfig(download_engine="prefix_sum"))
        assert np.isfinite(fast._download(5e6, 1.0))

    def test_capacity_prefix_cache_is_bounded(self):
        """Per-download noise floors must not grow the trace cache unboundedly."""
        video = synthetic_video("standard", num_chunks=4, seed=0)
        timestamps = np.arange(0.0, 50.0, 1.0)
        trace = Trace(timestamps, np.full_like(timestamps, 3.0), name="noisy")
        sim = ChunkLevelSimulator(
            video, trace,
            config=SimulatorConfig(bandwidth_noise_std=0.3,
                                   download_engine="prefix_sum"),
            rng=np.random.default_rng(0))
        for _ in range(50):
            sim.reset(start_offset_s=0.0)
            sim.step(2)
        assert len(trace._capacity_cache) <= 8


class TestSerialParallelEquivalence:
    @pytest.fixture
    def protocol_setup(self):
        scale = ExperimentScale(train_epochs=6, checkpoint_interval=3,
                                last_k_checkpoints=2, num_seeds=2,
                                dataset_scale=0.02, num_chunks=6)
        setup = build_environment("fcc", scale)
        trainer = DesignTrainer(setup.video, setup.train_traces,
                                setup.test_traces,
                                config=scale.evaluation_config(), qoe=setup.qoe)
        return trainer

    def test_scores_bit_identical(self, protocol_setup):
        serial = TestScoreProtocol(protocol_setup)
        parallel = TestScoreProtocol(
            protocol_setup, parallel=ParallelConfig(max_workers=2))
        serial_score, serial_runs = serial.run(None, None)
        parallel_score, parallel_runs = parallel.run(None, None)
        assert serial_score == parallel_score
        assert len(serial_runs) == len(parallel_runs)
        for run_a, run_b in zip(serial_runs, parallel_runs):
            assert run_a.seed == run_b.seed
            assert run_a.reward_history == run_b.reward_history
            assert run_a.checkpoint_epochs == run_b.checkpoint_epochs
            assert run_a.checkpoint_scores == run_b.checkpoint_scores

    def test_run_many_matches_individual_runs(self, protocol_setup):
        protocol = TestScoreProtocol(protocol_setup)
        single_score, _ = protocol.run(None, None)
        results = protocol.run_many([(None, None), (None, None)])
        assert len(results) == 2
        for score, runs in results:
            assert score == single_score
            assert len(runs) == len(protocol.seeds)


class TestParallelMap:
    def test_preserves_order_with_workers(self):
        result = parallel_map(_square, list(range(8)),
                              ParallelConfig(max_workers=2))
        assert result == [x * x for x in range(8)]

    def test_serial_path(self):
        result = parallel_map(_square, [3, 4], ParallelConfig(max_workers=1))
        assert result == [9, 16]

    def test_effective_workers(self, monkeypatch):
        assert effective_workers(1) == 1
        assert effective_workers(4) == 4
        assert effective_workers(-1) >= 1
        monkeypatch.setenv("REPRO_WORKERS", "3")
        assert effective_workers(None) == 3
        monkeypatch.setenv("REPRO_WORKERS", "junk")
        with pytest.warns(UserWarning):
            assert effective_workers(None) == 1


def _square(x):
    return x * x


class TestBatchedEvaluation:
    def test_batched_matches_serial(self):
        scale = ExperimentScale(dataset_scale=0.02, num_chunks=8)
        setup = build_environment("fcc", scale)
        agent = _make_agent(setup)
        serial = evaluate_agent(agent, setup.video, setup.test_traces,
                                qoe=setup.qoe, batched=False)
        batched = evaluate_agent(agent, setup.video, setup.test_traces,
                                 qoe=setup.qoe, batched=True)
        direct = evaluate_agent_batched(agent, setup.video, setup.test_traces,
                                        qoe=setup.qoe)
        assert batched == pytest.approx(serial, rel=1e-9)
        assert direct == pytest.approx(serial, rel=1e-9)

    def test_noise_falls_back_to_serial(self):
        """Bandwidth noise requires the serial path (RNG stream order)."""
        scale = ExperimentScale(dataset_scale=0.02, num_chunks=6)
        setup = build_environment("fcc", scale)
        agent = _make_agent(setup)
        noisy = SimulatorConfig(bandwidth_noise_std=0.2)
        score_a = evaluate_agent(agent, setup.video, setup.test_traces,
                                 qoe=setup.qoe, simulator_config=noisy,
                                 seed=3, batched=True)
        score_b = evaluate_agent(agent, setup.video, setup.test_traces,
                                 qoe=setup.qoe, simulator_config=noisy,
                                 seed=3, batched=False)
        assert score_a == score_b


def _make_agent(setup, seed=0):
    from repro.core.evaluation import instantiate_agent
    return instantiate_agent(None, None, setup.video, setup.train_traces,
                             seed=seed)


class TestFastInference:
    def test_fast_matches_graph_forward(self):
        rng = np.random.default_rng(0)
        cases = [
            PensieveNetwork((6, 8), 6, rng=rng),
            PensieveNetwork((4, 8), 6, rng=rng),
            PensieveNetwork((5,), 6, rng=rng),
            GenericActorCritic((6, 8), 6, rng=rng),
            GenericActorCritic((6, 8), 6, encoder="conv", rng=rng),
            GenericActorCritic((7,), 4, rng=rng),
            GenericActorCritic((6, 8), 6, encoder="gru", rng=rng),
        ]
        for network in cases:
            states = rng.normal(size=(5,) + network.state_shape)
            fast = network.policy_probs(states)
            previous = set_fast_inference(False)
            try:
                graph = network.policy_probs(states)
            finally:
                set_fast_inference(previous)
            np.testing.assert_allclose(fast, graph, atol=1e-12)

    def test_fold_cache_invalidated_by_optimizer_step(self):
        rng = np.random.default_rng(1)
        network = PensieveNetwork((6, 8), 6, rng=rng)
        states = rng.normal(size=(3, 6, 8))
        before = network.policy_probs(states)
        optimizer = nn.RMSProp(network.parameters(), lr=0.05)
        logits, value = network.forward(nn.tensor(states))
        (logits.sum() + value.sum()).backward()
        optimizer.step()
        after = network.policy_probs(states)
        previous = set_fast_inference(False)
        try:
            graph = network.policy_probs(states)
        finally:
            set_fast_inference(previous)
        np.testing.assert_allclose(after, graph, atol=1e-12)
        assert np.abs(after - before).max() > 1e-9

    def test_toggle_roundtrip(self):
        previous = set_fast_inference(False)
        assert fast_inference_enabled() is False
        set_fast_inference(previous)
        assert fast_inference_enabled() is previous


class TestFusedUpdate:
    def test_fused_update_matches_autograd(self):
        video = synthetic_video("standard", num_chunks=10, seed=1)
        timestamps = np.arange(0.0, 300.0, 1.0)
        traces = TraceSet([Trace(timestamps, np.full_like(timestamps, 3.0))])
        rng = np.random.default_rng(0)
        states = rng.normal(size=(10, 6, 8))
        actions = rng.integers(0, 6, size=10)
        returns = rng.normal(size=10)

        def make_trainer():
            network = PensieveNetwork((6, 8), 6, rng=np.random.default_rng(7))
            agent = ABRAgent(StateFunction.original(), network,
                             rng=np.random.default_rng(5))
            return A2CTrainer(agent, video, traces, seed=5)

        graph_trainer = make_trainer()
        fused_trainer = make_trainer()
        assert fused_trainer.agent.network.supports_fused_update()
        graph_stats = graph_trainer._graph_update(states, actions,
                                                  returns.copy(), 0.4)
        fused_stats = fused_trainer._fused_update(states, actions,
                                                  returns.copy(), 0.4)
        np.testing.assert_allclose(graph_stats, fused_stats, atol=1e-8)
        for p, q in zip(graph_trainer.agent.network.parameters(),
                        fused_trainer.agent.network.parameters()):
            np.testing.assert_allclose(p.data, q.data, atol=1e-10)

    def test_generic_network_fused_support_follows_compiler(self):
        # Since PR 5 the kernel compiler lowers generated architectures onto
        # the fused path; --no-compile restores the graph-only behaviour.
        network = GenericActorCritic((6, 8), 6,
                                     rng=np.random.default_rng(0))
        assert network.supports_fused_update() is True
        previous = nn.set_compilation(False)
        try:
            fresh = GenericActorCritic((6, 8), 6,
                                       rng=np.random.default_rng(0))
            assert fresh.supports_fused_update() is False
        finally:
            nn.set_compilation(previous)


class TestDiscountedReturnsVectorized:
    @pytest.mark.parametrize("gamma", [0.0, 0.1, 0.5, 0.9, 0.99, 1.0])
    @pytest.mark.parametrize("length", [0, 1, 2, 17, 48, 600])
    def test_matches_scalar_recurrence(self, gamma, length):
        rng = np.random.default_rng(length + int(gamma * 100))
        rewards = rng.normal(size=length).tolist()
        bootstrap = 2.5
        expected = np.zeros(length)
        running = bootstrap
        for index in reversed(range(length)):
            running = rewards[index] + gamma * running
            expected[index] = running
        actual = discounted_returns(rewards, gamma, bootstrap)
        np.testing.assert_allclose(actual, expected, rtol=1e-9, atol=1e-9)


class TestDtypeKnob:
    def test_set_default_dtype(self):
        previous = nn.set_default_dtype("float32")
        try:
            assert nn.get_default_dtype() == np.float32
            assert nn.tensor([1.0, 2.0]).data.dtype == np.float32
            assert nn.zeros(3).data.dtype == np.float32
            dense = nn.Dense(4, 2)
            assert dense.weight.data.dtype == np.float32
        finally:
            nn.set_default_dtype(previous)
        assert nn.get_default_dtype() == np.float64

    def test_context_manager(self):
        with nn.default_dtype("float32"):
            assert nn.get_default_dtype() == np.float32
        assert nn.get_default_dtype() == np.float64

    def test_rejects_unsupported(self):
        with pytest.raises(ValueError):
            nn.set_default_dtype("int32")

    def test_experiment_scale_dtype_applied(self):
        """The drivers run under scale.dtype and restore the global default."""
        from repro.analysis.experiments import run_component_experiment
        scale = ExperimentScale(train_epochs=2, checkpoint_interval=2,
                                last_k_checkpoints=1, num_seeds=1,
                                dataset_scale=0.02, num_chunks=5,
                                num_designs=2, max_trained_designs=1,
                                dtype="float32")
        result = run_component_experiment("fcc", scale=scale)
        assert np.isfinite(result.original_score)
        assert nn.get_default_dtype() == np.float64

    def test_float32_training_runs(self):
        with nn.default_dtype("float32"):
            scale = ExperimentScale(train_epochs=3, checkpoint_interval=3,
                                    last_k_checkpoints=1, num_seeds=1,
                                    dataset_scale=0.02, num_chunks=5)
            setup = build_environment("fcc", scale)
            trainer = DesignTrainer(setup.video, setup.train_traces,
                                    setup.test_traces,
                                    config=scale.evaluation_config(),
                                    qoe=setup.qoe)
            score, runs = TestScoreProtocol(trainer).run(None, None)
            assert np.isfinite(score)
            assert runs[0].checkpoint_scores


class TestFinalScoreLastK:
    def test_honors_configured_last_k(self):
        run = TrainingRun(seed=0, reward_history=[], checkpoint_epochs=[1, 2, 3, 4],
                          checkpoint_scores=[0.0, 0.0, 1.0, 3.0],
                          last_k_checkpoints=2)
        assert run.final_score == pytest.approx(2.0)

    def test_falls_back_to_all_checkpoints(self):
        run = TrainingRun(seed=0, reward_history=[], checkpoint_epochs=[1, 2],
                          checkpoint_scores=[1.0, 3.0])
        assert run.final_score == pytest.approx(2.0)

    def test_empty_scores_are_minus_inf(self):
        run = TrainingRun(seed=0, reward_history=[], checkpoint_epochs=[],
                          checkpoint_scores=[], last_k_checkpoints=3)
        assert run.final_score == float("-inf")

    def test_trainer_stamps_last_k(self):
        scale = ExperimentScale(train_epochs=4, checkpoint_interval=2,
                                last_k_checkpoints=1, num_seeds=1,
                                dataset_scale=0.02, num_chunks=5)
        setup = build_environment("fcc", scale)
        trainer = DesignTrainer(setup.video, setup.train_traces,
                                setup.test_traces,
                                config=scale.evaluation_config(), qoe=setup.qoe)
        run = trainer.run(None, None, seed=0)
        assert run.last_k_checkpoints == 1
        assert run.final_score == pytest.approx(run.checkpoint_scores[-1])
