"""Tests for the heavier experiment drivers (combination, emulation comparison).

These exercise the Table 4 and Table 5 workloads at a very small scale so the
benchmark code paths are covered by the fast test suite as well.
"""

import numpy as np
import pytest

from repro.analysis import (
    ExperimentScale,
    run_combination_experiment,
    run_emulation_comparison,
)

TINY = ExperimentScale(dataset_scale=0.02, num_chunks=8, train_epochs=6,
                       checkpoint_interval=3, last_k_checkpoints=2,
                       num_seeds=1, num_designs=4, max_trained_designs=2,
                       seed=0)


class TestCombinationDriver:
    @pytest.fixture(scope="class")
    def result(self):
        return run_combination_experiment("starlink", "gpt-3.5", TINY, top_k=1)

    def test_all_scores_populated(self, result):
        assert np.isfinite(result.original_score)
        # Individual and combined scores exist whenever any design survived.
        if result.state_score is not None and result.network_score is not None:
            assert result.combined_score is not None

    def test_improvement_properties_consistent(self, result):
        if result.state_score is not None:
            expected = (result.state_score - result.original_score) \
                / abs(result.original_score) * 100.0
            assert result.state_improvement == pytest.approx(expected, rel=1e-6)
        if result.combined_score is None:
            assert result.combined_improvement is None

    def test_environment_recorded(self, result):
        assert result.environment == "starlink"
        assert result.llm_profile == "gpt-3.5"


class TestEmulationComparisonDriver:
    @pytest.fixture(scope="class")
    def result(self):
        return run_emulation_comparison("starlink", "gpt-4", TINY)

    def test_scores_are_finite(self, result):
        for value in (result.original_sim_score, result.best_sim_score,
                      result.original_emu_score, result.best_emu_score):
            assert np.isfinite(value)

    def test_best_sim_at_least_original(self, result):
        # The "best" design is selected by simulation score, so by construction
        # it is at least as good as the original in simulation — unless no
        # design survived, in which case both entries are the original.
        assert result.best_sim_score >= result.original_sim_score - 1e-9 or \
            result.best_sim_score == result.original_sim_score

    def test_improvements_defined(self, result):
        assert result.sim_improvement is None or np.isfinite(result.sim_improvement)
        assert result.emu_improvement is None or np.isfinite(result.emu_improvement)
