"""Tests for the packet-level emulation substrate."""

import numpy as np
import pytest

from repro.abr import BufferBasedPolicy, FixedBitratePolicy, synthetic_video
from repro.emulation import (
    DashPlayer,
    EmulationConfig,
    Emulator,
    HTTPClient,
    HTTPConfig,
    LinkConfig,
    MTU_BYTES,
    PacketDeliveryLink,
    PlayerConfig,
    TCPConfig,
    TCPConnection,
    emulate_session,
    evaluate_policy_emulated,
)
from repro.traces import Trace, TraceSet, generate_fcc_trace


@pytest.fixture
def flat_link(flat_trace):
    return PacketDeliveryLink(flat_trace, LinkConfig(one_way_delay_s=0.01))


class TestPacketDeliveryLink:
    def test_mean_throughput_matches_trace(self, flat_trace):
        link = PacketDeliveryLink(flat_trace)
        assert link.mean_throughput_mbps == pytest.approx(3.0, rel=0.02)

    def test_packets_delivered_scale_with_time(self, flat_link):
        one_second = flat_link.packets_delivered_between(0.0, 1.0)
        two_seconds = flat_link.packets_delivered_between(0.0, 2.0)
        expected_per_second = 3.0e6 / 8.0 / MTU_BYTES
        assert one_second == pytest.approx(expected_per_second, rel=0.05)
        assert two_seconds == pytest.approx(2 * expected_per_second, rel=0.05)

    def test_zero_interval(self, flat_link):
        assert flat_link.packets_delivered_between(5.0, 5.0) == 0
        assert flat_link.packets_delivered_between(5.0, 4.0) == 0

    def test_time_to_deliver_inverse_of_counting(self, flat_link):
        num_bytes = 250_000  # ~0.67 s at 3 Mbps
        end = flat_link.time_to_deliver(0.0, num_bytes)
        expected = num_bytes * 8 / 3e6
        assert end == pytest.approx(expected, rel=0.05)

    def test_time_to_deliver_with_rate_cap(self, flat_link):
        num_bytes = 100_000
        capped = flat_link.time_to_deliver(0.0, num_bytes,
                                           rate_cap_bytes_per_s=10_000)
        assert capped == pytest.approx(10.0, rel=0.01)

    def test_time_to_deliver_zero_bytes(self, flat_link):
        assert flat_link.time_to_deliver(3.0, 0.0) == 3.0

    def test_schedule_wraps_cyclically(self, flat_trace):
        link = PacketDeliveryLink(flat_trace)
        far_future = link.cycle_duration_s * 3 + 1.0
        packets = link.packets_delivered_between(far_future, far_future + 1.0)
        assert packets > 0

    def test_throughput_between(self, flat_link):
        assert flat_link.throughput_between(0.0, 2.0) == pytest.approx(3.0, rel=0.05)
        assert flat_link.throughput_between(2.0, 2.0) == 0.0

    def test_zero_capacity_trace_raises_on_delivery(self):
        trace = Trace([0.0, 10.0], [0.0, 0.0])
        link = PacketDeliveryLink(trace)
        with pytest.raises(RuntimeError):
            link.time_to_deliver(0.0, 1500.0)


class TestTCPConnection:
    def test_small_transfer_fits_in_initial_window(self, flat_link):
        tcp = TCPConnection(flat_link)
        result = tcp.transfer(0.0, 5_000)
        # One round: at least one RTT.
        assert result.duration_s >= flat_link.config.rtt_s

    def test_slow_start_doubles_window(self, flat_link):
        tcp = TCPConnection(flat_link, TCPConfig(initial_cwnd_segments=2))
        initial = tcp.cwnd_segments
        tcp.transfer(0.0, 2 * MTU_BYTES)  # sender-limited round
        assert tcp.cwnd_segments == pytest.approx(initial * 2)

    def test_large_transfer_throughput_approaches_link_rate(self, flat_link):
        tcp = TCPConnection(flat_link)
        result = tcp.transfer(0.0, 3_000_000)  # 3 MB over a 3 Mbps link
        assert result.mean_throughput_mbps == pytest.approx(3.0, rel=0.35)

    def test_idle_reset_collapses_window(self):
        # A very fast link lets slow start grow the window without loss events.
        fast_trace = Trace(np.arange(0.0, 60.0, 1.0), np.full(60, 100.0))
        link = PacketDeliveryLink(fast_trace, LinkConfig(one_way_delay_s=0.01))
        config = TCPConfig(initial_cwnd_segments=4, idle_reset_s=0.5)
        tcp = TCPConnection(link, config)
        first = tcp.transfer(0.0, 1_000_000)
        grown = tcp.cwnd_segments
        assert grown > 4 * config.initial_cwnd_segments
        tcp.transfer(first.end_s + 5.0, 1_500)  # long idle gap resets cwnd
        assert tcp.cwnd_segments < grown

    def test_transfer_zero_bytes(self, flat_link):
        tcp = TCPConnection(flat_link)
        result = tcp.transfer(1.0, 0.0)
        assert result.duration_s == 0.0

    def test_sequential_transfers_advance_time(self, flat_link):
        tcp = TCPConnection(flat_link)
        first = tcp.transfer(0.0, 100_000)
        second = tcp.transfer(first.end_s, 100_000)
        assert second.end_s > first.end_s
        assert second.start_s == pytest.approx(first.end_s)


class TestHTTPClient:
    def test_get_latency_includes_rtt_and_processing(self, flat_link):
        client = HTTPClient(flat_link, http_config=HTTPConfig(server_processing_s=0.1))
        response = client.get(0.0, 1_000)
        minimum = flat_link.config.rtt_s + 0.1
        assert response.latency_s >= minimum

    def test_larger_bodies_take_longer(self, flat_link):
        client = HTTPClient(flat_link)
        small = client.get(0.0, 10_000)
        large = client.get(small.response_complete_s, 900_000)
        assert large.latency_s > small.latency_s

    def test_negative_body_rejected(self, flat_link):
        with pytest.raises(ValueError):
            HTTPClient(flat_link).get(0.0, -1.0)


class TestDashPlayer:
    def _player(self, video, trace, **player_kwargs):
        link = PacketDeliveryLink(trace, LinkConfig(one_way_delay_s=0.02))
        return DashPlayer(video, link,
                          player_config=PlayerConfig(**player_kwargs))

    def test_full_playback_produces_all_records(self, small_video, flat_trace):
        player = self._player(small_video, flat_trace)
        while not player.done:
            player.observe()
            player.step(1)
        result = player.result()
        assert result.num_chunks == small_video.num_chunks
        assert player.startup_delay_s > 0.0

    def test_startup_delay_grows_with_threshold(self, small_video, flat_trace):
        quick = self._player(small_video, flat_trace, startup_buffer_s=4.0)
        slow = self._player(small_video, flat_trace, startup_buffer_s=12.0)
        for player in (quick, slow):
            while not player.done:
                player.step(0)
        assert slow.startup_delay_s > quick.startup_delay_s

    def test_stalls_on_slow_link_at_high_bitrate(self, small_video, slow_trace):
        player = self._player(small_video, slow_trace)
        while not player.done:
            player.step(5)
        assert player.total_stall_s > 0.0
        assert any(event.kind == "stall" for event in player.events)

    def test_no_stalls_with_conservative_policy_on_fast_link(self, small_video,
                                                             flat_trace):
        player = self._player(small_video, flat_trace)
        while not player.done:
            player.step(0)
        assert player.total_stall_s == pytest.approx(0.0)

    def test_invalid_bitrate_and_finished_errors(self, small_video, flat_trace):
        player = self._player(small_video, flat_trace)
        with pytest.raises(IndexError):
            player.step(42)
        while not player.done:
            player.step(0)
        with pytest.raises(RuntimeError):
            player.step(0)
        with pytest.raises(RuntimeError):
            player.observe()

    def test_observation_interface_matches_simulator(self, small_video, flat_trace,
                                                     sample_observation):
        player = self._player(small_video, flat_trace)
        obs = player.observe()
        assert obs.throughput_mbps_history.shape == \
            sample_observation.throughput_mbps_history.shape
        assert obs.total_chunks == small_video.num_chunks


class TestEmulator:
    def test_emulate_session_with_baseline(self, small_video, flat_trace):
        result = emulate_session(BufferBasedPolicy(), small_video, flat_trace)
        assert result.num_chunks == small_video.num_chunks
        assert np.isfinite(result.mean_reward)

    def test_evaluate_over_traceset(self, small_video):
        traces = TraceSet([generate_fcc_trace(duration_s=120, seed=i)
                           for i in range(2)], name="emu")
        score = evaluate_policy_emulated(BufferBasedPolicy(), small_video, traces)
        assert np.isfinite(score)

    def test_emulation_downloads_slower_than_simulation(self, small_video, flat_trace):
        """TCP slow start and HTTP overheads inflate download times vs. simulation."""
        from repro.abr import run_session

        policy = FixedBitratePolicy(3)
        sim = run_session(policy, small_video, flat_trace)
        emu = emulate_session(policy, small_video, flat_trace)
        sim_mean_dl = np.mean([r.download_time_s for r in sim.records])
        emu_mean_dl = np.mean([r.download_time_s for r in emu.records])
        assert emu_mean_dl > sim_mean_dl

    def test_emulator_config_injection(self, small_video, flat_trace):
        config = EmulationConfig(link=LinkConfig(one_way_delay_s=0.2))
        slow_rtt = Emulator(small_video, config=config)
        fast_rtt = Emulator(small_video)
        slow_result = slow_rtt.run(FixedBitratePolicy(2), flat_trace)
        fast_result = fast_rtt.run(FixedBitratePolicy(2), flat_trace)
        assert (np.mean([r.download_time_s for r in slow_result.records])
                > np.mean([r.download_time_s for r in fast_result.records]))
