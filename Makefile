# Convenience targets for the Nada reproduction.
#
#   make smoke          - quick regression gate: fast tests + the bench-regression
#                         gate (engine A/B and the compiled-generated-design
#                         check, compared against the committed BENCH_*.json
#                         baselines with a tolerance)
#   make test           - the full tier-1 suite (tests + benchmark regenerations)
#   make bench          - the evaluation-engine benchmark, refreshing BENCH_baseline.json
#   make lint           - static analysis gate: the repo contract linter over
#                         src/repro plus the design auditor's self-check corpus
#                         (equivalent to `repro lint --self`); fails on any
#                         contract error or corpus deviation
#   make campaign-smoke - multi-environment examples + CLI campaign at tiny scale
#   make serve-smoke    - tiny fleet through `repro serve` with telemetry + Chrome
#                         trace: validates the percentile/throughput JSON, the
#                         trace file, and the serving section of `repro report`
#   make chaos-smoke    - the tiny campaign under deterministic fault injection:
#                         every job raises once, workers crash, a store write is
#                         torn and a lease is contended -- the run must heal
#                         (exit 0, zero quarantined) purely via retries
#   make dist-smoke     - the tiny campaign over `--backend remote` (a TCP
#                         coordinator + 2 pulled-worker subprocesses) under an
#                         rpc chaos plan (worker crash, connection drop, torn
#                         store write): must exit 0 with zero quarantined jobs
#                         and a store record-for-record identical to the
#                         serial reference run

PYTHON ?= python
export PYTHONPATH := src

.PHONY: smoke test lint bench bench-generated campaign-smoke chaos-smoke serve-smoke dist-smoke

smoke:
	$(PYTHON) -m pytest -q -m "not slow"
	$(PYTHON) benchmarks/bench_regression.py

lint:
	$(PYTHON) -m repro lint --self

test:
	$(PYTHON) -m pytest -x -q

bench:
	$(PYTHON) benchmarks/bench_scales.py --json benchmarks/BENCH_baseline.json

bench-generated:
	$(PYTHON) benchmarks/bench_scales.py --mode generated --json benchmarks/BENCH_generated.json

# Tiny end-to-end pass over the multi-environment scenarios: both examples at
# smoke scale, then a two-environment CLI campaign exercising the scheduler
# and the persistent result store (cold pass with telemetry + Chrome trace,
# then warm replay).  The cold pass's `repro report` summary lands in
# campaign-telemetry-summary.txt (uploaded as a CI artifact), and the trace
# JSON is validated as loadable Chrome/Perfetto input.
campaign-smoke:
	$(PYTHON) examples/cellular_5g_streaming.py --dataset-scale 0.02 --num-designs 3 --train-epochs 8 --num-chunks 6
	$(PYTHON) examples/starlink_satellite_abr.py --dataset-scale 0.05 --num-designs 3 --train-epochs 8 --num-chunks 6
	rm -rf .campaign-smoke-store .campaign-smoke-telemetry .campaign-smoke-trace.json
	$(PYTHON) -m repro campaign --environments fcc starlink --num-designs 2 \
	    --dataset-scale 0.02 --num-chunks 6 --train-epochs 6 \
	    --checkpoint-interval 2 --num-seeds 1 --no-early-stopping \
	    --store .campaign-smoke-store \
	    --telemetry .campaign-smoke-telemetry --trace .campaign-smoke-trace.json
	$(PYTHON) -c "import json; t = json.load(open('.campaign-smoke-trace.json'))['traceEvents']; assert t and all({'name', 'ph', 'ts'} <= set(e) for e in t), 'malformed Chrome trace'; print(f'trace OK: {len(t)} events')"
	$(PYTHON) -m repro report .campaign-smoke-telemetry | tee campaign-telemetry-summary.txt
	test -s campaign-telemetry-summary.txt
	$(PYTHON) -m repro campaign --environments fcc starlink --num-designs 2 \
	    --dataset-scale 0.02 --num-chunks 6 --train-epochs 6 \
	    --checkpoint-interval 2 --num-seeds 1 --no-early-stopping \
	    --store .campaign-smoke-store
	rm -rf .campaign-smoke-store .campaign-smoke-telemetry .campaign-smoke-trace.json

# Serving smoke: a tiny fleet driven through `repro serve` with telemetry and
# a Chrome trace.  The JSON output is validated for the serving contract
# (p50/p95/p99 decision latency, decisions/sec, sessions/sec all present and
# sane), the Chrome trace for loadability, and the `repro report` summary for
# the serving section the fleet's serve.* counters feed.
serve-smoke:
	rm -rf .serve-smoke-telemetry .serve-smoke-trace.json
	$(PYTHON) -m repro serve --sessions 32 --dataset-scale 0.03 --num-chunks 6 \
	    --json --telemetry .serve-smoke-telemetry --trace .serve-smoke-trace.json \
	    > serve-smoke-metrics.json
	$(PYTHON) -c "import json; m = json.load(open('serve-smoke-metrics.json'))['metrics']; \
	    assert m['num_sessions'] == 32 and m['num_decisions'] == 32 * 6; \
	    assert m['decisions_per_s'] > 0 and m['sessions_per_s'] > 0; \
	    assert 0.0 <= m['p50_decision_latency_s'] <= m['p95_decision_latency_s'] <= m['p99_decision_latency_s']; \
	    print(f\"serve metrics OK: {m['decisions_per_s']:.0f} dec/s, p99 {m['p99_decision_latency_s']*1e3:.2f} ms\")"
	$(PYTHON) -c "import json; t = json.load(open('.serve-smoke-trace.json'))['traceEvents']; assert t and all({'name', 'ph', 'ts'} <= set(e) for e in t), 'malformed Chrome trace'; print(f'trace OK: {len(t)} events')"
	$(PYTHON) -c "from repro.core import telemetry; \
	    s = telemetry.summarize(telemetry.load_events('.serve-smoke-telemetry'))['serving']; \
	    assert s['fleet_runs'] == 1 and s['sessions'] == 32 and s['decisions'] == 32 * 6, s; \
	    print(f\"report serving section OK: {s['decisions']} decisions in {s['ticks']} ticks\")"
	rm -rf .serve-smoke-telemetry .serve-smoke-trace.json serve-smoke-metrics.json

# Chaos smoke: the tiny two-environment campaign again, but with the
# deterministic fault harness armed -- every job's first attempt raises, one
# worker process is killed outright, every record's first write is torn, and
# every key's first lease claim finds a stale foreign holder.  The campaign
# must nevertheless exit 0 with every job healed by retries: the telemetry
# report is asserted to show retries > 0 and zero quarantined jobs or corrupt
# records.  This is the CI guard that the fault-tolerance layer keeps working
# end to end, not just under unit tests.
chaos-smoke:
	rm -rf .chaos-smoke-store .chaos-smoke-telemetry
	$(PYTHON) -m repro campaign --environments fcc starlink --num-designs 2 \
	    --dataset-scale 0.02 --num-chunks 6 --train-epochs 6 \
	    --checkpoint-interval 2 --num-seeds 1 --no-early-stopping \
	    --workers 2 --max-retries 3 \
	    --faults "job.exception:*:1,job.crash:starlink:1,store.torn_write:*:1,store.lease_hold:*:1:120" \
	    --store .chaos-smoke-store --telemetry .chaos-smoke-telemetry
	$(PYTHON) -c "import json, sys; \
	    from repro.core import telemetry; \
	    events = telemetry.load_events('.chaos-smoke-telemetry'); \
	    f = telemetry.summarize(events)['faults']; \
	    print(json.dumps(f, indent=2)); \
	    assert f['retries'] > 0, 'fault plan never fired'; \
	    assert f['torn_writes'] > 0, 'torn-write site never fired'; \
	    assert f['leases_stolen'] > 0, 'stale-lease site never fired'; \
	    assert f['quarantined'] == 0, 'chaos run lost jobs'; \
	    assert f['corrupt_records'] == 0, 'chaos run corrupted the store'; \
	    print('chaos smoke OK: all injected faults healed')"
	rm -rf .chaos-smoke-store .chaos-smoke-telemetry

# Distributed smoke: the tiny two-environment campaign once serially (the
# reference), then over `--backend remote` -- a TCP coordinator feeding two
# pulled-worker subprocesses -- with the rpc chaos plan armed: one worker is
# crashed outright mid-job, another drops its coordinator connection, and a
# store write is torn.  The remote run must exit 0 with zero quarantined
# jobs, its store must be record-for-record identical to the serial
# reference (the exactly-once + bit-identity acceptance gate), and the
# telemetry report must show the faults actually fired (workers lost,
# requeues) and that the coordinator never fell back to local execution.
dist-smoke:
	rm -rf .dist-smoke-serial .dist-smoke-remote .dist-smoke-telemetry
	$(PYTHON) -m repro campaign --environments fcc starlink --num-designs 2 \
	    --dataset-scale 0.02 --num-chunks 6 --train-epochs 6 \
	    --checkpoint-interval 2 --num-seeds 1 --no-early-stopping \
	    --store .dist-smoke-serial
	$(PYTHON) -m repro campaign --environments fcc starlink --num-designs 2 \
	    --dataset-scale 0.02 --num-chunks 6 --train-epochs 6 \
	    --checkpoint-interval 2 --num-seeds 1 --no-early-stopping \
	    --backend remote --remote-workers 2 --max-retries 3 \
	    --faults "rpc.worker_crash:fcc|state:1,rpc.conn_drop:starlink|original:1,store.torn_write:*:1" \
	    --store .dist-smoke-remote --telemetry .dist-smoke-telemetry
	$(PYTHON) -c "import json, os; \
	    snap = lambda root: {os.path.relpath(os.path.join(dp, f), root): json.load(open(os.path.join(dp, f))) for dp, _, fs in os.walk(root) for f in fs if f.endswith('.json')}; \
	    serial = snap('.dist-smoke-serial'); remote = snap('.dist-smoke-remote'); \
	    assert serial, 'serial reference store is empty'; \
	    assert serial == remote, 'remote store diverged from the serial reference'; \
	    print(f'store OK: {len(remote)} records bit-identical to serial')"
	$(PYTHON) -c "import json; \
	    from repro.core import telemetry; \
	    s = telemetry.summarize(telemetry.load_events('.dist-smoke-telemetry')); \
	    d = s['distributed']; f = s['faults']; \
	    print(json.dumps(d, indent=2)); \
	    assert d['workers_lost'] > 0, 'rpc chaos never cost a worker'; \
	    assert d['requeues'] > 0, 'no job was ever requeued'; \
	    assert d['local_fallbacks'] == 0, 'coordinator degraded to local'; \
	    assert f['quarantined'] == 0, 'dist chaos run lost jobs'; \
	    assert f['torn_writes'] > 0, 'torn-write site never fired'; \
	    print('dist smoke OK: remote chaos healed, exactly-once held')"
	rm -rf .dist-smoke-serial .dist-smoke-remote .dist-smoke-telemetry
