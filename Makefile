# Convenience targets for the Nada reproduction.
#
#   make smoke   - quick regression gate: fast tests + a 1-worker bench run
#   make test    - the full tier-1 suite (tests + benchmark regenerations)
#   make bench   - the evaluation-engine benchmark, refreshing BENCH_baseline.json

PYTHON ?= python
export PYTHONPATH := src

.PHONY: smoke test bench

smoke:
	$(PYTHON) -m pytest -q -m "not slow"
	$(PYTHON) benchmarks/bench_scales.py --workers 1

test:
	$(PYTHON) -m pytest -x -q

bench:
	$(PYTHON) benchmarks/bench_scales.py --json benchmarks/BENCH_baseline.json
