"""Benchmark: Table 5 — combining generated states with generated networks.

The paper takes the top GPT-3.5 states and the top GPT-3.5 networks, trains
their combinations, and reports the improvement of the best combination next
to the individual improvements (state-only and network-only).

Reproduction target (shape): the combination is at least as good as the
original design, and not worse than the weaker of the two individual
redesigns; on Starlink the combined improvement is clearly positive.
"""

from __future__ import annotations

import pytest

from repro.analysis import format_improvement, render_table, run_combination_experiment

from bench_scales import COMBINATION_SCALE
from conftest import emit

ENVIRONMENTS = ("starlink",)
PROFILE = "gpt-3.5"

#: Paper Table 5 improvements (state, network, combined), in percent.
PAPER_TABLE5 = {
    "fcc": (1.7, 1.4, 2.2),
    "starlink": (52.9, 50.0, 61.1),
    "4g": (13.0, 2.6, 16.5),
    "5g": (2.2, 3.0, 3.1),
}


def _run_all():
    return {env: run_combination_experiment(env, PROFILE, COMBINATION_SCALE, top_k=1)
            for env in ENVIRONMENTS}


@pytest.mark.benchmark(group="table5")
def test_table5_state_network_combinations(benchmark, report_file):
    results = benchmark.pedantic(_run_all, rounds=1, iterations=1)

    rows = []
    for environment, result in results.items():
        paper_state, paper_network, paper_combined = PAPER_TABLE5[environment]
        rows.append([
            environment.upper(),
            format_improvement(result.state_improvement),
            format_improvement(result.network_improvement),
            format_improvement(result.combined_improvement),
            f"{paper_state:.1f}% / {paper_network:.1f}% / {paper_combined:.1f}%",
        ])
    table = render_table(
        ["Dataset", "State (ours)", "Neural Net (ours)", "Combined (ours)",
         "Paper (state/NN/combined)"],
        rows,
        title=f"Table 5 — combining generated states and networks "
              f"({PROFILE}, top-1 x top-1, {COMBINATION_SCALE.train_epochs} epochs)")
    report_file("table5_combined", table)
    emit("Table 5: combined state + network designs", table)

    for environment, result in results.items():
        assert result.state_score is not None
        assert result.network_score is not None
        assert result.combined_score is not None
        # The combination behaves like its parts: it does not fall far below
        # the weaker of the two individual redesigns, nor far below the
        # original (at this scale a generous seed-noise tolerance applies).
        floor = min(result.state_score, result.network_score)
        assert result.combined_score >= floor - (0.3 * abs(floor) + 0.3)
        tolerance = 0.5 * abs(result.original_score) + 0.3
        assert result.combined_score >= result.original_score - tolerance
        # The best redesign (state, network or combination) matches or beats
        # the original — the qualitative takeaway of Table 5.
        best_redesign = max(result.state_score, result.network_score,
                            result.combined_score)
        assert best_redesign >= result.original_score - 0.1 * abs(result.original_score)
