"""Benchmark: Figure 5 — comparison of early-stopping mechanisms.

The paper collects 2,000 trained designs, labels the top 1% (by final
performance) as positive, and cross-validates five early-stopping mechanisms,
reporting the false-negative rate (top designs wrongly rejected) and the
true-negative rate (suboptimal designs correctly stopped).  "Reward Only" —
the 1D-CNN over early training rewards — offers the best trade-off,
terminating ~87% of suboptimal designs.

This benchmark builds a smaller corpus of really-trained designs through the
same pipeline, runs the same five mechanisms under the same cross-validation
protocol, and prints the Figure-5 rows.

Reproduction target (shape): reward-based mechanisms dominate the text-only
mechanism, and the selected mechanism stops a substantial fraction of
suboptimal designs while keeping the false-negative rate moderate.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import build_design_corpus, render_table
from repro.core import EarlyStoppingConfig, cross_validate_predictors

from bench_scales import CORPUS_SCALE
from conftest import emit

CORPUS_ENVIRONMENT = "starlink"   # designs separate most clearly on Starlink
NUM_DESIGNS = 40
PREFIX_LENGTH = 8
TOP_FRACTION = 0.1          # paper: 0.01 over 2,000 designs; scaled to corpus size
SMOOTHED_FRACTION = 0.3     # paper: 0.20

#: Paper Figure 5 reference points (approximate, for the printed table).
PAPER_FIGURE5 = {
    "reward_only": (0.12, 0.87),
    "text_only": (0.55, 0.60),
    "text_reward": (0.25, 0.80),
    "heuristic_max": (0.20, 0.75),
    "heuristic_last": (0.35, 0.70),
}


def _run():
    corpus = build_design_corpus(CORPUS_ENVIRONMENT, "gpt-4",
                                 num_designs=NUM_DESIGNS, scale=CORPUS_SCALE)
    predictor_kwargs = {
        "reward_only": {"config": EarlyStoppingConfig(
            reward_prefix_length=PREFIX_LENGTH, training_epochs=150,
            top_fraction=TOP_FRACTION, smoothed_fraction=SMOOTHED_FRACTION)},
        "text_only": {"epochs": 150, "top_fraction": TOP_FRACTION,
                      "smoothed_fraction": SMOOTHED_FRACTION},
        "text_reward": {"epochs": 150, "top_fraction": TOP_FRACTION,
                        "smoothed_fraction": SMOOTHED_FRACTION,
                        "reward_prefix_length": PREFIX_LENGTH},
        "heuristic_max": {"top_fraction": TOP_FRACTION,
                          "reward_prefix_length": PREFIX_LENGTH},
        "heuristic_last": {"top_fraction": TOP_FRACTION,
                           "reward_prefix_length": PREFIX_LENGTH},
    }
    results = cross_validate_predictors(
        corpus, num_folds=5, train_fraction_per_fold=0.3,
        top_fraction=TOP_FRACTION, seed=0, predictor_kwargs=predictor_kwargs)
    return corpus, results


@pytest.mark.benchmark(group="figure5")
def test_figure5_early_stopping_mechanisms(benchmark, report_file):
    corpus, results = benchmark.pedantic(_run, rounds=1, iterations=1)

    rows = []
    for result in sorted(results, key=lambda r: -r.true_negative_rate):
        paper_fnr, paper_tnr = PAPER_FIGURE5[result.name]
        rows.append([
            result.name,
            f"{result.false_negative_rate:.2f}",
            f"{result.true_negative_rate:.2f}",
            f"{paper_fnr:.2f} / {paper_tnr:.2f}",
        ])
    table = render_table(
        ["Mechanism", "False negative rate", "True negative rate",
         "Paper (FNR / TNR)"],
        rows,
        title=f"Figure 5 — early-stopping mechanisms "
              f"({len(corpus)} trained designs, 5-fold CV, "
              f"prefix = first {PREFIX_LENGTH} episodes)")
    report_file("figure5_early_stopping", table)
    emit("Figure 5: early-stopping mechanism comparison", table)

    by_name = {r.name: r for r in results}
    # All rates are valid probabilities.
    for result in results:
        assert 0.0 <= result.false_negative_rate <= 1.0
        assert 0.0 <= result.true_negative_rate <= 1.0
        assert len(result.fold_details) == 5

    # Reward-based signals beat the text-only signal (the paper's key finding).
    def quality(name):
        r = by_name[name]
        return r.true_negative_rate - r.false_negative_rate

    best_reward_based = max(quality("reward_only"), quality("text_reward"),
                            quality("heuristic_max"))
    assert best_reward_based >= quality("text_only") - 0.05

    # The best mechanism stops a substantial fraction of suboptimal designs.
    best = max(results, key=lambda r: r.true_negative_rate - r.false_negative_rate)
    assert best.true_negative_rate >= 0.3
