"""Distributed transport benchmark: remote worker scaling on a sleep fleet.

Measures the coordinator/worker transport's work-stealing throughput with a
batch of sleep-bound items (so the measurement isolates the *transport* —
dispatch, heartbeats, RESULT merge — from training compute), at 1 and N
remote worker subprocesses, and reports the speedup plus per-job dispatch
overhead.  The pull protocol has no placement step: a fast worker simply
leases more often, so the expected speedup on K uniform jobs is ~min(N, K).

Not wired into a CI gate (wall-clock scaling on shared runners is noisy);
``tests/test_distributed.py`` pins the 2-workers-strictly-faster acceptance
with generous slack instead.

Run from the repository root::

    PYTHONPATH=src python benchmarks/bench_distributed.py [--json out.json]
"""

from __future__ import annotations

import argparse
import json
import os
import time
from typing import Any, Dict, List

from repro.core import ParallelConfig, RemoteConfig, RemoteExecutor

BENCH_DIR = os.path.dirname(os.path.abspath(__file__))


def _sleep_job(item: float, attempt: int) -> float:
    time.sleep(item)
    return item


def _importable_sleep_job():
    """The sleep job under its importable module name.

    Run as a script this module is ``__main__``, which worker subprocesses
    cannot unpickle by reference; re-importing it as ``bench_distributed``
    (with :data:`BENCH_DIR` on the workers' path) gives a resolvable name.
    """
    import bench_distributed
    return bench_distributed._sleep_job


def run_distributed_benchmark(num_items: int = 8,
                              sleep_s: float = 0.25,
                              worker_counts: List[int] = [1, 2, 4],
                              ) -> Dict[str, Any]:
    items = [sleep_s] * num_items
    config = ParallelConfig(max_workers=max(worker_counts))
    sleep_job = _importable_sleep_job()
    rows = []
    for count in worker_counts:
        executor = RemoteExecutor(RemoteConfig(poll_interval_s=0.01,
                                               idle_retry_s=0.01))
        try:
            executor.launch_workers(count, extra_path=BENCH_DIR)
            if not executor.wait_for_workers(count, timeout=60.0):
                raise RuntimeError(f"{count} worker(s) never connected")
            start = time.monotonic()
            outcomes = executor.run(sleep_job, items, config)
            elapsed = time.monotonic() - start
        finally:
            executor.close()
        assert all(outcome.ok for outcome in outcomes)
        ideal = num_items * sleep_s / min(count, num_items)
        rows.append({
            "workers": count,
            "wall_s": round(elapsed, 4),
            "ideal_s": round(ideal, 4),
            # Everything that is not sleeping is transport: dispatch,
            # heartbeat handling, result decode and merge.
            "overhead_per_job_ms": round(
                max(elapsed - ideal, 0.0) / num_items * 1e3, 3),
            "dispatched": executor.last_stats["dispatched"],
        })
    base = rows[0]["wall_s"]
    for row in rows:
        row["speedup"] = round(base / row["wall_s"], 3)
    return {"benchmark": "distributed-transport", "num_items": num_items,
            "sleep_s": sleep_s, "rows": rows}


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--num-items", type=int, default=8)
    parser.add_argument("--sleep-s", type=float, default=0.25)
    parser.add_argument("--workers", type=int, nargs="+", default=[1, 2, 4])
    parser.add_argument("--json", metavar="PATH", default=None,
                        help="also write the report as JSON to PATH")
    args = parser.parse_args()
    report = run_distributed_benchmark(args.num_items, args.sleep_s,
                                       args.workers)
    print(f"{'workers':>8} {'wall_s':>8} {'ideal_s':>8} {'speedup':>8} "
          f"{'overhead/job':>13}")
    for row in report["rows"]:
        print(f"{row['workers']:>8} {row['wall_s']:>8.3f} "
              f"{row['ideal_s']:>8.3f} {row['speedup']:>8.2f} "
              f"{row['overhead_per_job_ms']:>10.2f} ms")
    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(report, handle, indent=2)
        print(f"report written to {args.json}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
