"""Benchmark: Table 1 — network trace datasets used in the study.

Regenerates the dataset-statistics table (trace counts, total hours, mean
throughput, training schedule) from the synthetic trace generators and checks
that each environment's statistics land near the published values.
"""

from __future__ import annotations

import pytest

from repro.analysis import render_table
from repro.traces import (
    ENVIRONMENTS,
    PAPER_TABLE1,
    build_dataset,
    compute_dataset_stats,
)

from conftest import emit

#: Scale of the generated datasets relative to the published ones.  The
#: Starlink dataset is generated at full scale (it is small); the others at
#: 20% so the benchmark stays fast.  Mean throughput is scale-invariant.
DATASET_SCALES = {"fcc": 0.2, "starlink": 1.0, "4g": 0.2, "5g": 0.2}

#: Acceptable relative error on mean throughput vs. the published column.
THROUGHPUT_TOLERANCE = 0.45


def _build_table1():
    rows = []
    stats_by_env = {}
    for name, spec in ENVIRONMENTS.items():
        scale = DATASET_SCALES[name]
        train, test = build_dataset(name, seed=0, scale=scale)
        stats = compute_dataset_stats(spec.display_name, train, test,
                                      train_epochs=spec.train_epochs,
                                      test_interval=spec.test_interval)
        stats_by_env[name] = stats
        paper = PAPER_TABLE1[name]
        rows.append([
            spec.display_name,
            f"{stats.train_traces} ({paper.train_traces})",
            f"{stats.train_hours:.1f} ({paper.train_hours})",
            f"{stats.test_traces} ({paper.test_traces})",
            f"{stats.test_hours:.1f} ({paper.test_hours})",
            f"{stats.throughput_mbps:.1f} ({paper.throughput_mbps})",
            f"{stats.train_epochs:,}",
            str(stats.test_interval),
        ])
    table = render_table(
        ["Dataset", "Train Traces", "Train Hours", "Test Traces", "Test Hours",
         "Throughput (Mbps)", "Train Epochs", "Test Interval"],
        rows,
        title="Table 1 — measured (paper values in parentheses); "
              f"dataset scales: {DATASET_SCALES}")
    return table, stats_by_env


@pytest.mark.benchmark(group="table1")
def test_table1_trace_datasets(benchmark, report_file):
    table, stats_by_env = benchmark.pedantic(_build_table1, rounds=1, iterations=1)
    report_file("table1_traces", table)
    emit("Table 1: network trace datasets", table)

    for name, stats in stats_by_env.items():
        paper = PAPER_TABLE1[name]
        scale = DATASET_SCALES[name]
        # Trace counts follow the published counts at the chosen scale.
        assert stats.train_traces == max(1, round(paper.train_traces * scale))
        assert stats.test_traces == max(1, round(paper.test_traces * scale))
        # Mean throughput matches the published characterization of the
        # environment (this is what distinguishes FCC from 5G, etc.).
        relative_error = abs(stats.throughput_mbps - paper.throughput_mbps) \
            / paper.throughput_mbps
        assert relative_error < THROUGHPUT_TOLERANCE, (
            f"{name}: mean throughput {stats.throughput_mbps:.2f} vs "
            f"published {paper.throughput_mbps}")
        # The training schedule columns are configuration, reproduced exactly.
        assert stats.train_epochs == paper.train_epochs
        assert stats.test_interval == paper.test_interval

    # The ordering of environments by bandwidth must match the paper:
    # FCC < Starlink < 4G < 5G.
    means = {name: stats.throughput_mbps for name, stats in stats_by_env.items()}
    assert means["fcc"] < means["4g"] < means["5g"]
    assert means["starlink"] < means["4g"]
