"""Benchmark: Table 2 — fraction of generated designs passing the pre-checks.

The paper generates 3,000 state designs with each of GPT-3.5 and GPT-4 and
reports how many pass the compilation check and the normalization check:

    GPT-3.5: 41.2% compilable, 27.4% well normalized
    GPT-4:   68.6% compilable, 50.2% well normalized

This benchmark generates a smaller pool per profile through the same
generation + filtering pipeline and checks that the measured rates land near
those values and preserve the GPT-4 > GPT-3.5 ordering.
"""

from __future__ import annotations

import pytest

from repro.analysis import render_table
from repro.core import CandidatePool, DesignGenerator, FilterPipeline, GenerationConfig
from repro.llm import SyntheticLLM

from conftest import emit

#: Designs generated per model profile (paper: 3,000).
DESIGNS_PER_PROFILE = 250

#: Published Table 2 fractions.
PAPER_RATES = {
    "gpt-3.5": {"compilable": 0.412, "normalized": 0.274},
    "gpt-4": {"compilable": 0.686, "normalized": 0.502},
}

#: Allowed absolute deviation from the published fractions.
TOLERANCE = 0.12


def _run_generation(profile: str):
    client = SyntheticLLM(profile, seed=123)
    generator = DesignGenerator(client, GenerationConfig(base_seed=0))
    pool = CandidatePool(generator.generate_states(DESIGNS_PER_PROFILE))
    report = FilterPipeline().apply(pool)
    return report


@pytest.mark.benchmark(group="table2")
def test_table2_precheck_pass_rates(benchmark, report_file):
    reports = benchmark.pedantic(
        lambda: {profile: _run_generation(profile) for profile in PAPER_RATES},
        rounds=1, iterations=1)

    rows = []
    for profile, report in reports.items():
        paper = PAPER_RATES[profile]
        rows.append([
            f"Nada w/ {profile.upper()}",
            f"{report.total}",
            f"{report.compilable} ({report.compilable_fraction:.1%}; "
            f"paper {paper['compilable']:.1%})",
            f"{report.well_normalized} ({report.well_normalized_fraction:.1%}; "
            f"paper {paper['normalized']:.1%})",
        ])
    table = render_table(["Nada", "Total", "Compilable", "Well Normalized"], rows,
                         title=f"Table 2 — pre-check pass rates "
                               f"({DESIGNS_PER_PROFILE} designs per profile)")
    report_file("table2_precheck_rates", table)
    emit("Table 2: compilation / normalization pass rates", table)

    for profile, report in reports.items():
        paper = PAPER_RATES[profile]
        assert abs(report.compilable_fraction - paper["compilable"]) < TOLERANCE
        assert abs(report.well_normalized_fraction - paper["normalized"]) < TOLERANCE
        # Well-normalized designs are a subset of compilable designs.
        assert report.well_normalized <= report.compilable

    # GPT-4 outperforms GPT-3.5 on both checks (the paper's takeaway).
    assert reports["gpt-4"].compilable_fraction > reports["gpt-3.5"].compilable_fraction
    assert reports["gpt-4"].well_normalized_fraction > \
        reports["gpt-3.5"].well_normalized_fraction
