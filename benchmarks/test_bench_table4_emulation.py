"""Benchmark: Table 4 — emulation results of the best generated states.

The paper validates the best simulator-trained states by streaming real video
through dash.js over Mahimahi.  Here the trained policies (original and best
generated) are replayed through the packet-level emulator — TCP slow start,
idle-window decay, HTTP overheads and a dash.js-like player — over the same
test traces used in simulation, for the Starlink, 4G and 5G environments
(the paper skips FCC because its simulation gains are not significant).

Reproduction target (shape):
* emulation scores are lower than simulation scores for the same policies
  (the Table 3 vs Table 4 gap);
* the best generated state still outperforms (or at least matches) the
  original in emulation.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import format_improvement, render_table, run_emulation_comparison

from bench_scales import EMULATION_SCALE
from conftest import emit

ENVIRONMENTS = ("starlink", "4g", "5g")
PROFILE = "gpt-4"

#: Paper Table 4 (original, GPT-4 best) emulation scores, for reference.
PAPER_TABLE4 = {
    "starlink": (-0.0482, 0.0759),
    "4g": (4.976, 9.233),
    "5g": (17.26, 21.55),
}


def _run_all():
    return {env: run_emulation_comparison(env, PROFILE, EMULATION_SCALE)
            for env in ENVIRONMENTS}


@pytest.mark.benchmark(group="table4")
def test_table4_emulation_of_best_states(benchmark, report_file):
    results = benchmark.pedantic(_run_all, rounds=1, iterations=1)

    rows = []
    for environment, result in results.items():
        paper_original, paper_best = PAPER_TABLE4[environment]
        rows.append([environment.upper(), "Original",
                     f"{result.original_emu_score:.3f}",
                     "–", f"{paper_original:.3f}"])
        rows.append([environment.upper(), f"w/ {PROFILE.upper()}",
                     f"{result.best_emu_score:.3f}",
                     format_improvement(result.emu_improvement),
                     f"{paper_best:.3f}"])
    table = render_table(
        ["Dataset", "Method", "Emulation score (ours)", "Impr. (ours)",
         "Score (paper)"],
        rows,
        title=f"Table 4 — emulation of best generated states "
              f"(scale: {EMULATION_SCALE.num_designs} designs, "
              f"{EMULATION_SCALE.train_epochs} epochs)")
    sim_rows = [[env.upper(),
                 f"{res.original_sim_score:.3f}", f"{res.original_emu_score:.3f}",
                 f"{res.best_sim_score:.3f}", f"{res.best_emu_score:.3f}"]
                for env, res in results.items()]
    sim_table = render_table(
        ["Dataset", "Original sim", "Original emu", "Best sim", "Best emu"],
        sim_rows, title="Simulation vs. emulation (same trained policies)")
    body = table + "\n\n" + sim_table
    report_file("table4_emulation", body)
    emit("Table 4: emulation of the best generated states", body)

    wins = 0
    for environment, result in results.items():
        # All four scores are meaningful numbers.
        for value in (result.original_sim_score, result.best_sim_score,
                      result.original_emu_score, result.best_emu_score):
            assert np.isfinite(value), f"{environment}: non-finite score"
        # The generated design's advantage does not collapse in emulation
        # (the paper reports discrepancies between the two, hence a tolerance).
        tolerance = 0.3 * abs(result.original_emu_score) + 0.5
        assert result.best_emu_score >= result.original_emu_score - tolerance, (
            f"{environment}: generated design collapsed in emulation")
        if result.best_emu_score >= result.original_emu_score:
            wins += 1

    # The headline of Table 4: the generated states keep outperforming the
    # original in emulation in (most of) the evaluated environments.
    assert wins >= 2, (
        f"generated states only won {wins}/{len(results)} environments in emulation")
