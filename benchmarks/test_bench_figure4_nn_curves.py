"""Benchmark: Figure 4 — best generated neural-network architectures vs. original.

The paper restricts the architecture study to GPT-3.5 and finds that (a) the
best generated architectures still beat the original, but (b) the gains are
generally smaller than those from redesigning the state.  This benchmark
regenerates the Figure 4 series for two environments and checks both points.
"""

from __future__ import annotations

import pytest

from repro.analysis import render_ascii_curves, render_table, run_component_experiment

from bench_scales import CURVE_SCALE
from conftest import emit

ENVIRONMENTS = ("starlink", "fcc")
PROFILE = "gpt-3.5"


def _run_all():
    networks = {env: run_component_experiment(env, "network", PROFILE, CURVE_SCALE)
                for env in ENVIRONMENTS}
    # State experiment on Starlink for the "state gains exceed NN gains" check.
    state_starlink = run_component_experiment("starlink", "state", PROFILE,
                                              CURVE_SCALE)
    return networks, state_starlink


@pytest.mark.benchmark(group="figure4")
def test_figure4_network_training_curves(benchmark, report_file):
    networks, state_starlink = benchmark.pedantic(_run_all, rounds=1, iterations=1)

    blocks = []
    summary_rows = []
    for environment, result in networks.items():
        blocks.append(render_ascii_curves(result.comparison, width=50, height=10))
        summary_rows.append([
            environment.upper(),
            f"{result.original_score:.3f}",
            f"{result.best_score:.3f}" if result.best_score is not None else "-",
            f"{result.improvement_percent:.1f}%"
            if result.improvement_percent is not None else "-",
        ])
    blocks.append(render_table(
        ["Dataset", "Original", "Best Generated NN", "Impr."], summary_rows,
        title="Figure 4 summary (final scores)"))
    body = "\n\n".join(blocks)
    report_file("figure4_nn_curves", body)
    emit("Figure 4: best generated neural networks vs. original", body)

    for environment, result in networks.items():
        assert result.best_score is not None, f"{environment}: no surviving network"
        assert len(result.comparison.curves) == 2

    # At least one environment's best generated architecture matches or beats
    # the original (the figure's takeaway); recurrent encoders need far more
    # than the benchmark's training budget, so not every environment is
    # required to win at this scale.
    nn_gains = {env: r.best_score - r.original_score for env, r in networks.items()}
    best_env = max(nn_gains, key=nn_gains.get)
    tolerance = 0.2 * abs(networks[best_env].original_score) + 0.15
    assert nn_gains[best_env] >= -tolerance, (
        "generated architectures regressed in every environment")

    # On Starlink, redesigning the state yields at least as much improvement as
    # redesigning the network (the paper's observation in §3.3: state gains
    # dominate architecture gains).  The margin absorbs seed noise at this
    # scale — with the published training budget the state advantage is large.
    nn_gain = nn_gains["starlink"]
    state_gain = (state_starlink.best_score - state_starlink.original_score)
    assert state_gain >= nn_gain - 0.3
