"""Benchmark: Table 3 — test performance of the best generated states (simulation).

For every environment (FCC, Starlink, 4G, 5G) and both model profiles
(GPT-3.5, GPT-4), the benchmark generates state designs, filters them, trains
the survivors and the original design under the same protocol, and reports
the best generated score and its improvement over the original — the same rows
as Table 3 of the paper.

Reproduction target (shape, not absolute numbers):
* the best generated state matches or beats the original in every environment,
  with the largest relative gains on Starlink and 4G;
* absolute scores grow with the environment's bandwidth (FCC < 4G < 5G),
  because the QoE reward is linear in bitrate.
"""

from __future__ import annotations

import pytest

from repro.analysis import format_improvement, render_table, run_component_experiment

from bench_scales import TABLE3_SCALE
from conftest import emit

ENVIRONMENTS = ("fcc", "starlink", "4g", "5g")
PROFILES = ("gpt-3.5", "gpt-4")

#: Paper values for reference in the printed table: (original, gpt35, gpt4).
PAPER_TABLE3 = {
    "fcc": (1.070, 1.089, 1.090),
    "starlink": (0.308, 0.472, 0.482),
    "4g": (11.705, 13.226, 14.973),
    "5g": (27.848, 28.447, 28.636),
}

#: Environments where the paper reports large gains; at benchmark scale the
#: *best of them* must show a clearly positive improvement.
LARGE_GAIN_ENVIRONMENTS = ("starlink", "4g")


def _run_all():
    results = {}
    for environment in ENVIRONMENTS:
        for profile in PROFILES:
            results[(environment, profile)] = run_component_experiment(
                environment, "state", profile, TABLE3_SCALE)
    return results


@pytest.mark.benchmark(group="table3")
def test_table3_best_generated_states(benchmark, report_file):
    results = benchmark.pedantic(_run_all, rounds=1, iterations=1)

    rows = []
    for environment in ENVIRONMENTS:
        paper_original, paper_35, paper_4 = PAPER_TABLE3[environment]
        base = results[(environment, PROFILES[0])]
        rows.append([environment.upper(), "Original",
                     f"{base.original_score:.3f}", "–",
                     f"{paper_original:.3f}", "–"])
        for profile, paper_score in zip(PROFILES, (paper_35, paper_4)):
            result = results[(environment, profile)]
            rows.append([
                environment.upper(), f"w/ {profile.upper()}",
                f"{result.best_score:.3f}" if result.best_score is not None else "-",
                format_improvement(result.improvement_percent),
                f"{paper_score:.3f}",
                format_improvement((paper_score - paper_original)
                                   / abs(paper_original) * 100.0),
            ])
    table = render_table(
        ["Dataset", "Method", "Score (ours)", "Impr. (ours)",
         "Score (paper)", "Impr. (paper)"],
        rows,
        title=f"Table 3 — best generated states, simulation "
              f"(scale: {TABLE3_SCALE.num_designs} designs, "
              f"{TABLE3_SCALE.train_epochs} epochs, {TABLE3_SCALE.num_seeds} seed)")
    report_file("table3_states_sim", table)
    emit("Table 3: best generated states vs. original (simulation)", table)

    # --- shape assertions -------------------------------------------------
    # (i) every cell produced an evaluable best design, and in no environment
    # does the best generated state collapse far below the original — at this
    # reduced scale (2 seeds vs. the paper's 5) a generous tolerance absorbs
    # seed noise while still catching qualitative regressions.
    for environment in ENVIRONMENTS:
        for profile in PROFILES:
            result = results[(environment, profile)]
            assert result.best_score is not None, (
                f"{environment}/{profile}: no generated design survived")
            tolerance = 0.5 * abs(result.original_score) + 0.3
            assert result.best_score >= result.original_score - tolerance, (
                f"{environment}/{profile}: best generated {result.best_score:.3f} "
                f"collapsed below original {result.original_score:.3f}")

    # (ii) the generated designs win somewhere: across all cells, the best
    # improvement is clearly positive, and it occurs in one of the
    # environments where the paper reports its largest gains.
    improvements = {key: (r.best_score - r.original_score)
                    for key, r in results.items()}
    best_cell = max(improvements, key=improvements.get)
    assert improvements[best_cell] > 0.0, "no cell improved over the original"
    large_gain_improvement = max(
        improvements[(env, profile)]
        for env in LARGE_GAIN_ENVIRONMENTS for profile in PROFILES)
    assert large_gain_improvement > 0.0, (
        "no improvement in the environments where the paper reports large gains")

    # (iii) environment score magnitudes follow the bandwidth ordering of the
    # paper: the 5G ladder's best scores dwarf the FCC scores.  (Best rather
    # than original scores are compared because a single undertrained original
    # policy can rebuffer catastrophically on the 53 Mbps ladder.)
    fcc_best = max(results[("fcc", p)].best_score for p in PROFILES)
    nr_best = max(results[("5g", p)].best_score for p in PROFILES)
    assert fcc_best < nr_best
