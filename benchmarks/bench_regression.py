"""Bench-regression gate: compare fresh benchmark runs against baselines.

``make smoke`` used to merely *run* the 1-worker benchmark; this script turns
that into a regression check.  It re-runs two cheap benchmark workloads and
compares them against the committed ``benchmarks/BENCH_*.json`` reports:

* **engine** — the seed-vs-optimized A/B behind ``BENCH_baseline.json``;
* **generated** — the compiled-generated-design check behind
  ``BENCH_generated.json`` (autograd-graph fallback vs compiled lockstep on
  non-Pensieve architectures), at a reduced scale so the gate stays fast;
* **serving** — the fleet-serving A/B behind ``BENCH_serving.json``
  (per-session serial emulation vs the batched fleet harness), at a reduced
  session count; the fleet must additionally stay bit-identical to its
  matched serial reference.

Two properties are enforced per workload:

* **correctness** — the fresh ``max_score_delta`` must stay within
  ``--max-score-delta`` (the fast engines may never change results);
* **performance** — the fresh speedup must reach at least
  ``--min-speedup-fraction`` of the committed report's speedup.  Absolute
  seconds are machine-dependent (committed reports come from a 1-CPU
  container), so the gate compares speedup *ratios*, with generous slack for
  noisy CI neighbours.

A third gate guards the telemetry layer: with telemetry disabled, the
instrumentation's projected cost (events an instrumented run would emit ×
measured per-call cost of the disabled hot path) must stay below
``--max-telemetry-overhead`` of that run's wall time.  Projection instead of
a wall-clock A/B keeps the gate deterministic — the disabled path costs
nanoseconds, so a direct A/B would drown in scheduler noise.

Committed baselines may carry a ``host`` metadata block (machine, python and
numpy versions, git sha — see ``bench_scales.host_metadata``); it is for
humans comparing reports across machines and is ignored here.

Exit code 0 when every gate passes, 1 otherwise.

Run from the repository root::

    PYTHONPATH=src python benchmarks/bench_regression.py
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from dataclasses import replace
from typing import List, Optional

from bench_scales import (DEFAULT_BENCH_SCALE, run_benchmark,
                          run_generated_benchmark, run_serving_benchmark)

BASELINES = {
    "engine": "BENCH_baseline.json",
    "generated": "BENCH_generated.json",
    "serving": "BENCH_serving.json",
}

#: Session count for the smoke-gate serving run (the committed report uses
#: ``bench_scales.SERVING_SESSIONS``; the ratio is stable well below that).
SMOKE_SERVING_SESSIONS = 64

#: Reduced scale for the smoke-gate runs (the committed reports use the full
#: DEFAULT_BENCH_SCALE; the gate only needs enough work for a stable ratio).
SMOKE_SCALE = replace(DEFAULT_BENCH_SCALE, train_epochs=16,
                      checkpoint_interval=8, last_k_checkpoints=2,
                      num_seeds=2, dataset_scale=0.03, num_chunks=12)


def _load_baseline(directory: str, name: str) -> Optional[dict]:
    path = os.path.join(directory, BASELINES[name])
    try:
        with open(path, "r", encoding="utf-8") as handle:
            return json.load(handle)
    except (OSError, json.JSONDecodeError):
        return None


def _check(name: str, fresh: dict, baseline: Optional[dict],
           min_fraction: float, max_delta: float,
           failures: List[str]) -> None:
    delta = float(fresh["max_score_delta"])
    speedup = float(fresh["speedup"])
    print(f"{name:9s}: fresh speedup {speedup:.2f}x, "
          f"score delta {delta:.2e}", end="")
    if delta > max_delta:
        failures.append(f"{name}: score delta {delta:.2e} exceeds "
                        f"{max_delta:.2e} — the fast engines changed results")
    if baseline is None:
        print("  (no committed baseline; correctness gate only)")
        return
    committed = float(baseline["speedup"])
    floor = committed * min_fraction
    print(f"  (committed {committed:.2f}x, floor {floor:.2f}x)")
    if speedup < floor:
        failures.append(
            f"{name}: fresh speedup {speedup:.2f}x fell below "
            f"{min_fraction:.0%} of the committed {committed:.2f}x")


def _check_telemetry_overhead(max_fraction: float,
                              failures: List[str]) -> None:
    """Gate the disabled-telemetry cost of the instrumented stack.

    Measures (a) the per-call cost of the disabled span path and (b) the
    event count and wall time of a real instrumented workload, then projects
    (a) × events onto the workload: that is the full price the workload pays
    for its instrumentation when telemetry is off.
    """
    from repro.analysis.experiments import build_environment
    from repro.core import telemetry
    from repro.core.evaluation import DesignTrainer, TestScoreProtocol

    assert not telemetry.enabled(), "telemetry must be off for this gate"
    calls = 200_000
    span = telemetry.span
    start = time.perf_counter()
    for _ in range(calls):
        with span("bench.noop"):
            pass
    per_call = (time.perf_counter() - start) / calls

    scale = replace(SMOKE_SCALE, train_epochs=8, checkpoint_interval=4)
    setup = build_environment("fcc", scale)
    trainer = DesignTrainer(setup.video, setup.train_traces,
                            setup.test_traces,
                            config=scale.evaluation_config(), qoe=setup.qoe)
    protocol = TestScoreProtocol(trainer, seeds=[0, 1], environment="fcc",
                                 scheduler=scale.scheduler())
    sink = telemetry.Telemetry()
    previous = telemetry.set_telemetry(sink)
    try:
        start = time.perf_counter()
        protocol.run(None, None)
        workload_s = time.perf_counter() - start
    finally:
        telemetry.set_telemetry(previous)

    projected = len(sink.events) * per_call / max(workload_s, 1e-9)
    print(f"telemetry: disabled span {per_call * 1e9:.0f} ns/call, "
          f"{len(sink.events)} events over {workload_s:.2f} s workload "
          f"-> {projected:.4%} projected overhead "
          f"(ceiling {max_fraction:.0%})")
    if projected > max_fraction:
        failures.append(
            f"telemetry: projected disabled-telemetry overhead "
            f"{projected:.2%} exceeds {max_fraction:.0%}")


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="Regression gate comparing fresh benchmark runs against "
                    "the committed BENCH_*.json baselines")
    parser.add_argument("--baseline-dir",
                        default=os.path.dirname(os.path.abspath(__file__)),
                        help="directory holding the committed BENCH_*.json")
    parser.add_argument("--min-speedup-fraction", type=float, default=0.35,
                        help="fresh speedup must reach this fraction of the "
                             "committed speedup (ratios, so machine-"
                             "independent; default leaves room for noisy CI)")
    parser.add_argument("--max-score-delta", type=float, default=1e-9,
                        help="maximum tolerated |score(reference) - "
                             "score(fast engine)| in the fresh runs")
    parser.add_argument("--max-telemetry-overhead", type=float, default=0.02,
                        help="ceiling on the projected disabled-telemetry "
                             "overhead fraction")
    parser.add_argument("--skip", nargs="*",
                        choices=sorted(BASELINES) + ["telemetry"],
                        default=[], help="workloads to skip")
    args = parser.parse_args(argv)

    failures: List[str] = []
    if "engine" not in args.skip:
        fresh = run_benchmark(scale=SMOKE_SCALE, workers=1, dtype="float32")
        _check("engine", fresh, _load_baseline(args.baseline_dir, "engine"),
               args.min_speedup_fraction, args.max_score_delta, failures)
    if "generated" not in args.skip:
        fresh = run_generated_benchmark(scale=SMOKE_SCALE, dtype="float32",
                                        num_seeds=2)
        _check("generated", fresh,
               _load_baseline(args.baseline_dir, "generated"),
               args.min_speedup_fraction, args.max_score_delta, failures)
    if "serving" not in args.skip:
        fresh = run_serving_benchmark(num_sessions=SMOKE_SERVING_SESSIONS,
                                      dataset_scale=0.03, num_chunks=12,
                                      dtype="float32")
        _check("serving", fresh, _load_baseline(args.baseline_dir, "serving"),
               args.min_speedup_fraction, args.max_score_delta, failures)
        if not fresh["bit_identical"]:
            failures.append("serving: fleet sessions diverged from the "
                            "matched serial reference — the batched harness "
                            "changed results")
    if "telemetry" not in args.skip:
        _check_telemetry_overhead(args.max_telemetry_overhead, failures)

    if failures:
        for failure in failures:
            print(f"REGRESSION: {failure}", file=sys.stderr)
        return 1
    print("bench regression gate: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
