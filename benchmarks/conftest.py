"""Shared configuration for the benchmark harness.

Every benchmark regenerates one of the paper's tables or figures at a reduced
scale (documented per benchmark) and prints the corresponding rows/series so
that the console output of ``pytest benchmarks/ --benchmark-only -s`` can be
compared directly against the paper.  Results are also appended to
``benchmarks/results/`` as plain-text reports.
"""

from __future__ import annotations

import os

import pytest

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


def pytest_configure(config):
    os.makedirs(RESULTS_DIR, exist_ok=True)


def pytest_collection_modifyitems(items):
    """Mark every benchmark as ``slow`` so the smoke run can skip them.

    The quick regression target is ``python -m pytest -q -m "not slow"``;
    the full table/figure regenerations only run when explicitly requested
    (or in the unfiltered tier-1 suite).
    """
    this_dir = os.path.dirname(__file__)
    for item in items:
        if str(item.fspath).startswith(this_dir):
            item.add_marker(pytest.mark.slow)


@pytest.fixture
def report_file():
    """Return a function that writes a named benchmark report to disk."""
    def write(name: str, content: str) -> str:
        path = os.path.join(RESULTS_DIR, f"{name}.txt")
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(content.rstrip() + "\n")
        return path
    return write


def emit(title: str, body: str) -> str:
    """Print a benchmark report block to stdout and return it."""
    block = f"\n{'=' * 72}\n{title}\n{'=' * 72}\n{body}\n"
    print(block)
    return block
