"""Ablation benchmarks: what each filtering stage buys.

These ablations quantify the design decisions DESIGN.md calls out:

1. **Pre-check savings** — how many full trainings the compilation and
   normalization checks avoid, and how the normalization threshold ``T``
   trades off strictness vs. false rejections.
2. **Early-stopping savings** — training episodes spent with and without the
   early-stopping classifier inside the full Nada pipeline, and the quality of
   the surviving best design.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.abr import synthetic_video
from repro.analysis import render_table
from repro.core import (
    CandidatePool,
    CompilationCheck,
    Design,
    DesignGenerator,
    DesignStatus,
    EarlyStoppingConfig,
    FilterPipeline,
    GenerationConfig,
    NadaConfig,
    NadaPipeline,
    NormalizationCheck,
)
from repro.llm import SyntheticLLM
from repro.traces import build_dataset

from bench_scales import ABLATION_SCALE
from conftest import emit


# --------------------------------------------------------------------------- #
# Ablation 1: pre-check savings and normalization-threshold sweep
# --------------------------------------------------------------------------- #
def _precheck_ablation(num_designs: int = 150):
    client = SyntheticLLM("gpt-3.5", seed=7)
    generator = DesignGenerator(client, GenerationConfig(base_seed=3))
    designs = generator.generate_states(num_designs)
    codes = [d.code for d in designs]

    # Threshold sweep for the normalization check.
    sweep_rows = []
    for threshold in (1.0, 10.0, 100.0, 1e4, 1e8):
        pool = [Design(kind="state", code=code) for code in codes]
        # The static audit is disabled here: this ablation isolates the
        # *dynamic* normalization threshold, which the audit's threshold-free
        # raw-feature rules would otherwise mask at permissive settings.
        pipeline = FilterPipeline(CompilationCheck(),
                                  NormalizationCheck(threshold=threshold),
                                  audit_check=None)
        report = pipeline.apply(pool)
        sweep_rows.append([f"T = {threshold:g}", report.compilable,
                           report.well_normalized,
                           f"{report.well_normalized_fraction:.1%}"])
    return sweep_rows, designs


@pytest.mark.benchmark(group="ablation")
def test_ablation_precheck_threshold_sweep(benchmark, report_file):
    sweep_rows, designs = benchmark.pedantic(_precheck_ablation, rounds=1,
                                             iterations=1)
    table = render_table(
        ["Normalization threshold", "Compilable", "Pass both checks", "Pass rate"],
        sweep_rows,
        title="Ablation — normalization-check threshold sweep (GPT-3.5 profile)")
    report_file("ablation_precheck_threshold", table)
    emit("Ablation: normalization threshold sweep", table)

    pass_counts = [row[2] for row in sweep_rows]
    # A stricter threshold can only reject more designs (monotone pass counts).
    assert pass_counts == sorted(pass_counts)
    # The paper's threshold (T = 100) rejects the raw-bytes designs but keeps
    # a meaningful fraction of candidates.
    t100 = dict((row[0], row) for row in sweep_rows)["T = 100"]
    assert 0 < t100[2] < len(designs)


# --------------------------------------------------------------------------- #
# Ablation 2: early-stopping compute savings inside the full pipeline
# --------------------------------------------------------------------------- #
def _pipeline_cost(use_early_stopping: bool):
    train, test = build_dataset("fcc", seed=0, scale=ABLATION_SCALE.dataset_scale)
    video = synthetic_video("standard", num_chunks=ABLATION_SCALE.num_chunks, seed=0)
    config = NadaConfig(
        target="state",
        num_designs=ABLATION_SCALE.num_designs,
        llm="gpt-4",
        evaluation=ABLATION_SCALE.evaluation_config(),
        use_early_stopping=use_early_stopping,
        bootstrap_fraction=0.4,
        min_bootstrap_designs=4,
        early_stopping=EarlyStoppingConfig(
            reward_prefix_length=6, training_epochs=80,
            top_fraction=0.2, smoothed_fraction=0.5),
        seed=0,
    )
    result = NadaPipeline(video, train, test, config=config).run()
    episodes_trained = sum(len(d.reward_history) for d in result.pool)
    return result, episodes_trained


@pytest.mark.benchmark(group="ablation")
def test_ablation_early_stopping_savings(benchmark, report_file):
    def run_both():
        with_es, cost_with = _pipeline_cost(True)
        without_es, cost_without = _pipeline_cost(False)
        return with_es, cost_with, without_es, cost_without

    with_es, cost_with, without_es, cost_without = benchmark.pedantic(
        run_both, rounds=1, iterations=1)

    savings = (1.0 - cost_with / cost_without) if cost_without else 0.0
    rows = [
        ["without early stopping", cost_without,
         len(without_es.pool.surviving_prechecks()), 0,
         f"{without_es.best_score:.3f}" if without_es.best_score is not None else "-"],
        ["with early stopping", cost_with,
         with_es.fully_trained, len(with_es.early_stopped_designs),
         f"{with_es.best_score:.3f}" if with_es.best_score is not None else "-"],
    ]
    table = render_table(
        ["Pipeline", "Training episodes", "Fully trained", "Early stopped",
         "Best score"],
        rows,
        title=f"Ablation — early-stopping compute savings "
              f"(episode savings: {savings:.1%})")
    report_file("ablation_early_stopping_savings", table)
    emit("Ablation: early-stopping compute savings", table)

    # Early stopping never costs more training than full evaluation.
    assert cost_with <= cost_without
    # Both pipelines still surface a usable best design.
    assert without_es.best_score is not None
    assert with_es.best_score is not None
    # The early-stopped pipeline's best design is not drastically worse.
    tolerance = 0.25 * abs(without_es.best_score) + 0.1
    assert with_es.best_score >= without_es.best_score - tolerance
