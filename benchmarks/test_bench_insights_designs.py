"""Benchmark: §4 — qualitative insights from the winning generated designs.

Section 4 of the paper inspects the best states per environment and distils
design principles: alternative normalization ranges/factors, feature removal
in simple environments, smoothed/predicted throughput and download-time
features, and — most notably — buffer-history features (trends, differences)
that the original Pensieve state ignores entirely.

This benchmark runs the state-design experiment on two environments, inspects
the idea tags of the top designs, and checks that the winning ideas come from
the same families the paper reports.
"""

from __future__ import annotations

from collections import Counter

import pytest

from repro.analysis import render_table, run_component_experiment
from repro.core import DesignKind

from bench_scales import ABLATION_SCALE
from conftest import emit

ENVIRONMENTS = ("starlink", "4g")
PROFILE = "gpt-4"
TOP_K = 3

#: The idea families §4 attributes to the winning designs.
PAPER_IDEA_FAMILIES = {
    "normalization": ("norm:signed", "norm:aggressive", "norm:mild"),
    "feature_removal": ("drop:download_time", "drop:next_sizes"),
    "throughput_engineering": ("feat:throughput_ema", "feat:throughput_variance",
                               "feat:throughput_trend", "feat:predicted_throughput",
                               "feat:predicted_download_time",
                               "feat:download_time_ema"),
    "buffer_history": ("feat:buffer_trend_savgol", "feat:buffer_diff",
                       "feat:buffer_trend_poly"),
}


def _run_all():
    return {env: run_component_experiment(env, "state", PROFILE, ABLATION_SCALE)
            for env in ENVIRONMENTS}


@pytest.mark.benchmark(group="insights")
def test_insights_from_winning_designs(benchmark, report_file):
    results = benchmark.pedantic(_run_all, rounds=1, iterations=1)

    rows = []
    family_hits = Counter()
    for environment, result in results.items():
        top = result.pool.top_k(TOP_K, kind=DesignKind.STATE)
        for rank, design in enumerate(top, start=1):
            tags = ", ".join(design.tags) or "(baseline recipe)"
            rows.append([environment.upper(), rank, f"{design.test_score:.3f}", tags])
            for family, members in PAPER_IDEA_FAMILIES.items():
                if any(tag in members for tag in design.tags):
                    family_hits[family] += 1
    table = render_table(
        ["Dataset", "Rank", "Score", "Design ideas (tags)"], rows,
        title="Insights — ideas present in the top generated states (cf. §4)")
    families = render_table(
        ["Idea family (from §4)", "Occurrences in top designs"],
        [[family, family_hits.get(family, 0)] for family in PAPER_IDEA_FAMILIES],
    )
    body = table + "\n\n" + families
    report_file("insights_designs", body)
    emit("Insights: design ideas of the winning states", body)

    # The winning designs draw on the idea families described in §4.
    assert sum(family_hits.values()) >= 1, (
        "no §4 idea family appears in any top design")
    # Every environment produced at least one evaluated design to inspect.
    for environment, result in results.items():
        assert result.pool.top_k(1, kind=DesignKind.STATE), (
            f"{environment}: no evaluated state designs")
