"""Benchmark scale presets and the end-to-end performance benchmark.

All benchmarks exercise the exact code paths of the paper's experiments, but
at a reduced scale so the whole harness runs on a laptop in minutes rather
than the cluster-months of the original study (3,000 designs x 40,000 epochs
x 5 seeds).  The presets below document the scale used by each benchmark;
raising them toward the published values only changes runtime, not code.

Run this module directly to measure the evaluation engine::

    PYTHONPATH=src python benchmarks/bench_scales.py --json benchmarks/BENCH_baseline.json

Two A/B modes are available.  ``--mode multi-seed`` (committed report:
``benchmarks/BENCH_multiseed.json``) compares the optimized per-seed engine
against the multi-seed lockstep trainer on the paper's 5-seed protocol —
same optimized substrate on both sides, only the training engine differs,
and the scores must agree exactly.  The default ``--mode engine`` scores the
original Pensieve design plus a few generated designs under the §3.1
protocol twice:

* **seed mode** — the seed repository's implementation: per-segment trace
  walk, one policy forward per chunk through the autograd graph, serial
  checkpoint evaluation, float64, allocation-heavy optimizer step and
  ``rng.choice`` action sampling (the last three are restored from the seed
  via the reference implementations in this file);
* **optimized mode** — the shipped engine: prefix-sum downloads, the folded
  NumPy inference tower, batched greedy evaluation, the fused optimizer, and
  the requested dtype/worker count.

Both modes run the same protocol on the same designs, and the report includes
the score agreement so speedups can never silently change results.
"""

from __future__ import annotations

import argparse
import contextlib
import json
import os
import sys
import tempfile
import time
from dataclasses import replace
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro import nn
from repro.abr.env import SimulatorConfig
from repro.abr.networks import set_fast_inference
from repro.analysis import ExperimentScale
from repro.analysis.experiments import build_environment
from repro.core.design import CandidatePool, DesignKind
from repro.core.evaluation import DesignTrainer, TestScoreProtocol
from repro.core.filters import FilterPipeline
from repro.core.generation import DesignGenerator, GenerationConfig
from repro.core.parallel import ParallelConfig
from repro.core.results import ResultStore
from repro.core.scheduler import CampaignScheduler, EvaluationJob, protocol_score
from repro.llm.synthetic import SyntheticLLM

#: Scale used by the Table 3 benchmark (per environment x profile cell).
TABLE3_SCALE = ExperimentScale(
    dataset_scale=0.04,
    num_chunks=14,
    train_epochs=50,
    checkpoint_interval=10,
    last_k_checkpoints=3,
    num_seeds=2,
    num_designs=8,
    max_trained_designs=4,
    seed=0,
)

#: Scale used by the Figure 3 / Figure 4 training-curve benchmarks.
CURVE_SCALE = ExperimentScale(
    dataset_scale=0.04,
    num_chunks=14,
    train_epochs=60,
    checkpoint_interval=10,
    last_k_checkpoints=3,
    num_seeds=2,
    num_designs=10,
    max_trained_designs=5,
    seed=0,
)

#: Scale used by the Table 4 emulation benchmark.
EMULATION_SCALE = ExperimentScale(
    dataset_scale=0.04,
    num_chunks=14,
    train_epochs=50,
    checkpoint_interval=10,
    last_k_checkpoints=3,
    num_seeds=1,
    num_designs=6,
    max_trained_designs=3,
    seed=0,
)

#: Scale used by the Table 5 combination benchmark.
COMBINATION_SCALE = ExperimentScale(
    dataset_scale=0.04,
    num_chunks=14,
    train_epochs=50,
    checkpoint_interval=10,
    last_k_checkpoints=3,
    num_seeds=2,
    num_designs=10,
    max_trained_designs=5,
    seed=0,
)

#: Scale used to build the Figure 5 early-stopping corpus.
CORPUS_SCALE = ExperimentScale(
    dataset_scale=0.03,
    num_chunks=12,
    train_epochs=24,
    checkpoint_interval=8,
    last_k_checkpoints=2,
    num_seeds=1,
    seed=0,
)

#: Scale used by the ablation benchmarks.
ABLATION_SCALE = ExperimentScale(
    dataset_scale=0.03,
    num_chunks=12,
    train_epochs=30,
    checkpoint_interval=10,
    last_k_checkpoints=2,
    num_seeds=1,
    num_designs=10,
    max_trained_designs=6,
    seed=0,
)

#: Default scale of the evaluation-engine benchmark below.
DEFAULT_BENCH_SCALE = ExperimentScale()

#: Generated designs scored on top of the original in each benchmark mode.
#: Defaults to 0 because generated state functions can spend most of their
#: time inside their own (engine-independent) code — e.g. a Savitzky-Golay
#: filter per observation — which dilutes the engine measurement equally in
#: both modes; the original design isolates the evaluation engine itself.
DEFAULT_BENCH_DESIGNS = 0


# --------------------------------------------------------------------------- #
# Seed reference implementations (restored for the baseline measurement)
# --------------------------------------------------------------------------- #
def _seed_conv1d_forward(self, x):
    """Conv1D.forward as shipped in the seed: one graph node per position."""
    from repro.nn.layers import stack
    from repro.nn.tensor import Tensor

    if x.ndim == 2:
        x = x.reshape(x.shape[0], 1, x.shape[1])
    batch, channels, length = x.shape
    if channels != self.in_channels:
        raise ValueError(f"Conv1D expected {self.in_channels} channels, got {channels}")
    kernel = self.kernel_size
    if length < kernel:
        raise ValueError(f"Conv1D input length {length} is shorter than kernel size {kernel}")
    positions = list(range(0, length - kernel + 1, self.stride))
    columns = []
    for start in positions:
        patch = x[:, :, start:start + kernel].reshape(batch, channels * kernel)
        columns.append(patch)
    stacked = stack(columns, axis=1)
    flat_weight = Tensor(self.weight.data.reshape(self.out_channels, channels * kernel))
    flat_weight.requires_grad = self.weight.requires_grad
    weight_param = self.weight

    def weight_backward(grad):
        weight_param._accumulate(grad.reshape(weight_param.data.shape))

    flat_weight._parents = (weight_param,)
    flat_weight._backward = weight_backward
    out = stacked.matmul(flat_weight.transpose())
    out = out.transpose(0, 2, 1)
    if self.bias is not None:
        out = out + self.bias.reshape(1, self.out_channels, 1)
    return self.activation(out)


def _seed_rmsprop_step(self):
    """RMSProp.step as shipped in the seed: fresh temporaries per parameter."""
    for p, square_avg in zip(self.parameters, self._square_avg):
        if p.grad is None:
            continue
        square_avg *= self.decay
        square_avg += (1.0 - self.decay) * p.grad ** 2
        p.data = p.data - self.lr * p.grad / (np.sqrt(square_avg) + self.eps)
        p.version = getattr(p, "version", 0) + 1


def _seed_sample_action(probabilities, rng):
    """sample_action as shipped in the seed: ``rng.choice`` with validation."""
    probs = np.asarray(probabilities, dtype=np.float64).ravel()
    probs = np.clip(probs, 0.0, None)
    total = probs.sum()
    if not np.isfinite(total) or total <= 0:
        probs = np.full(len(probs), 1.0 / len(probs))
    else:
        probs = probs / total
    return int(rng.choice(len(probs), p=probs))


@contextlib.contextmanager
def seed_reference_mode():
    """Swap in the seed's hot-path implementations for a baseline measurement."""
    from repro.nn import layers as nn_layers
    from repro.nn import optim as nn_optim
    from repro.rl import agent as rl_agent
    from repro.rl import policy as rl_policy

    saved = (nn_layers.Conv1D.forward, nn_optim.RMSProp.step,
             rl_policy.sample_action, rl_agent.sample_action,
             set_fast_inference(False), nn.set_default_dtype("float64"))
    nn_layers.Conv1D.forward = _seed_conv1d_forward
    nn_optim.RMSProp.step = _seed_rmsprop_step
    rl_policy.sample_action = _seed_sample_action
    rl_agent.sample_action = _seed_sample_action
    try:
        yield
    finally:
        nn_layers.Conv1D.forward = saved[0]
        nn_optim.RMSProp.step = saved[1]
        rl_policy.sample_action = saved[2]
        rl_agent.sample_action = saved[3]
        set_fast_inference(saved[4])
        nn.set_default_dtype(saved[5])


# --------------------------------------------------------------------------- #
# Workload
# --------------------------------------------------------------------------- #
def _bench_designs(scale: ExperimentScale, count: int):
    client = SyntheticLLM("gpt-4", seed=scale.seed)
    generator = DesignGenerator(client, GenerationConfig(base_seed=scale.seed))
    pool = CandidatePool(generator.generate(DesignKind.STATE, max(count * 2, 4)))
    FilterPipeline().apply(pool)
    return pool.surviving_prechecks()[:count]


def run_protocol_workload(scale: ExperimentScale,
                          download_engine: str,
                          batched_evaluation: bool,
                          workers: int = 1,
                          designs: Optional[list] = None,
                          lockstep: bool = False,
                          ) -> Tuple[float, Dict[str, float]]:
    """Score the original design plus the given generated states.

    Returns (wall-clock seconds, {design label: protocol score}).
    """
    setup = build_environment("fcc", scale)
    config = replace(scale.evaluation_config(),
                     simulator=SimulatorConfig(download_engine=download_engine),
                     batched_evaluation=batched_evaluation,
                     lockstep_training=lockstep)
    trainer = DesignTrainer(setup.video, setup.train_traces, setup.test_traces,
                            config=config, qoe=setup.qoe)
    protocol = TestScoreProtocol(trainer,
                                 parallel=ParallelConfig(max_workers=workers))
    designs = designs or []
    # Route each design into the slot its kind dictates (state designs pair
    # with the original network and vice versa).
    jobs = [(None, None)] + [TestScoreProtocol._design_job(design)
                             for design in designs]
    start = time.perf_counter()
    results = protocol.run_many(jobs)
    elapsed = time.perf_counter() - start
    labels = ["original"] + [design.design_id for design in designs]
    scores = {label: score for label, (score, _) in zip(labels, results)}
    return elapsed, scores


def run_benchmark(scale: ExperimentScale = DEFAULT_BENCH_SCALE,
                  workers: int = 1,
                  dtype: str = "float32",
                  num_designs: int = DEFAULT_BENCH_DESIGNS) -> dict:
    """Measure seed mode vs optimized mode; returns the report dict."""
    designs = _bench_designs(scale, num_designs)
    with seed_reference_mode():
        seed_seconds, seed_scores = run_protocol_workload(
            scale, download_engine="segment_walk", batched_evaluation=False,
            workers=1, designs=designs)

    previous_dtype = nn.set_default_dtype(dtype)
    try:
        optimized_seconds, optimized_scores = run_protocol_workload(
            scale, download_engine="prefix_sum", batched_evaluation=True,
            workers=workers, designs=designs)
    finally:
        nn.set_default_dtype(previous_dtype)

    score_delta = max(abs(seed_scores[k] - optimized_scores[k])
                      for k in seed_scores)
    return {
        "workload": {
            "environment": "fcc",
            "train_epochs": scale.train_epochs,
            "checkpoint_interval": scale.checkpoint_interval,
            "num_seeds": scale.num_seeds,
            "num_chunks": scale.num_chunks,
            "dataset_scale": scale.dataset_scale,
            "designs_scored": num_designs + 1,
        },
        "seed_mode": {"seconds": round(seed_seconds, 3), "scores": seed_scores},
        "optimized_mode": {"seconds": round(optimized_seconds, 3),
                           "scores": optimized_scores,
                           "dtype": dtype, "workers": workers},
        "speedup": round(seed_seconds / optimized_seconds, 2),
        "max_score_delta": score_delta,
        "cpu_count": os.cpu_count(),
    }


def run_multi_seed_benchmark(scale: Optional[ExperimentScale] = None,
                             dtype: str = "float32",
                             num_seeds: int = 5,
                             num_designs: int = DEFAULT_BENCH_DESIGNS) -> dict:
    """A/B the per-seed optimized engine against the multi-seed lockstep engine.

    Both modes run the full optimized substrate (prefix-sum downloads, folded
    inference, batched checkpoint evaluation); the only difference is the
    training engine: ``num_seeds`` serial :class:`~repro.rl.a2c.A2CTrainer`
    sessions versus one :class:`~repro.rl.a2c.MultiSeedA2CTrainer` advancing
    every seed through stacked-weight batched updates.  The protocol is
    seed-for-seed deterministic either way, so the report's
    ``max_score_delta`` is expected to be exactly 0.0.
    """
    scale = replace(scale or DEFAULT_BENCH_SCALE, num_seeds=num_seeds)
    designs = _bench_designs(scale, num_designs)
    previous_dtype = nn.set_default_dtype(dtype)
    try:
        per_seed_seconds, per_seed_scores = run_protocol_workload(
            scale, download_engine="prefix_sum", batched_evaluation=True,
            workers=1, designs=designs, lockstep=False)
        lockstep_seconds, lockstep_scores = run_protocol_workload(
            scale, download_engine="prefix_sum", batched_evaluation=True,
            workers=1, designs=designs, lockstep=True)
    finally:
        nn.set_default_dtype(previous_dtype)

    score_delta = max(abs(per_seed_scores[k] - lockstep_scores[k])
                      for k in per_seed_scores)
    return {
        "workload": {
            "environment": "fcc",
            "train_epochs": scale.train_epochs,
            "checkpoint_interval": scale.checkpoint_interval,
            "num_seeds": scale.num_seeds,
            "num_chunks": scale.num_chunks,
            "dataset_scale": scale.dataset_scale,
            "designs_scored": num_designs + 1,
            "dtype": dtype,
        },
        "per_seed_mode": {"seconds": round(per_seed_seconds, 3),
                          "scores": per_seed_scores},
        "lockstep_mode": {"seconds": round(lockstep_seconds, 3),
                          "scores": lockstep_scores},
        "speedup": round(per_seed_seconds / lockstep_seconds, 2),
        "max_score_delta": score_delta,
        "cpu_count": os.cpu_count(),
    }


#: Generated-architecture specs scored by ``--mode generated``: one per
#: design-space encoder family that previously fell back to per-seed
#: autograd-graph training (everything except ``pensieve_conv``).
GENERATED_BENCH_SPECS = (
    {"encoder": "flatten", "hidden_size": 128, "activation": "relu"},
    {"encoder": "conv", "hidden_size": 64, "activation": "leaky_relu"},
    {"encoder": "gru", "hidden_size": 64, "activation": "relu"},
    {"encoder": "lstm", "hidden_size": 64, "activation": "relu",
     "share_trunk": True},
)


def _generated_designs(count: int):
    """Deterministic generated NETWORK designs across encoder families."""
    from repro.core.design import Design
    from repro.llm.design_space import NetworkDesignSpec, NetworkDesignSpace

    space = NetworkDesignSpace()
    designs = []
    for index, kwargs in enumerate(GENERATED_BENCH_SPECS[:count]):
        spec = NetworkDesignSpec(**kwargs)
        designs.append(Design(design_id=f"gen-{kwargs['encoder']}-{index}",
                              kind=DesignKind.NETWORK,
                              code=space.render(spec)))
    return designs


def run_generated_benchmark(scale: Optional[ExperimentScale] = None,
                            dtype: str = "float32",
                            num_seeds: int = 3,
                            num_designs: int = len(GENERATED_BENCH_SPECS),
                            workers: int = 1) -> dict:
    """A/B the graph fallback against compiled lockstep on generated designs.

    The workload scores LLM-style generated *network* designs (non-Pensieve
    encoders: dense, conv, gru, lstm) under the §3.1 protocol twice:

    * **graph mode** — the pre-compiler path: ``set_compilation(False)``, so
      every generated design trains per seed through the autograd graph
      (exactly what the repository executed before the kernel compiler);
    * **compiled mode** — the kernel compiler lowers each design onto the
      fused engines and the whole seed batch trains in lockstep.

    Both modes keep exact numerics, so trace choices and actions are
    identical and ``max_score_delta`` is expected to be exactly 0.0.
    """
    from repro import nn

    scale = replace(scale or DEFAULT_BENCH_SCALE, num_seeds=num_seeds)
    designs = _generated_designs(num_designs)
    previous_dtype = nn.set_default_dtype(dtype)
    try:
        previous_compile = nn.set_compilation(False)
        try:
            graph_seconds, graph_scores = run_protocol_workload(
                scale, download_engine="prefix_sum", batched_evaluation=True,
                workers=workers, designs=designs, lockstep=True)
        finally:
            nn.set_compilation(previous_compile)
        compiled_seconds, compiled_scores = run_protocol_workload(
            scale, download_engine="prefix_sum", batched_evaluation=True,
            workers=workers, designs=designs, lockstep=True)
    finally:
        nn.set_default_dtype(previous_dtype)

    score_delta = max(abs(graph_scores[k] - compiled_scores[k])
                      for k in graph_scores)
    return {
        "workload": {
            "environment": "fcc",
            "train_epochs": scale.train_epochs,
            "checkpoint_interval": scale.checkpoint_interval,
            "num_seeds": scale.num_seeds,
            "num_chunks": scale.num_chunks,
            "dataset_scale": scale.dataset_scale,
            "designs_scored": num_designs + 1,
            "encoders": [spec["encoder"]
                         for spec in GENERATED_BENCH_SPECS[:num_designs]],
            "dtype": dtype,
            "workers": workers,
            "numerics": nn.get_numerics(),
        },
        "graph_mode": {"seconds": round(graph_seconds, 3),
                       "scores": graph_scores},
        "compiled_mode": {"seconds": round(compiled_seconds, 3),
                          "scores": compiled_scores},
        "speedup": round(graph_seconds / compiled_seconds, 2),
        "max_score_delta": score_delta,
        "cpu_count": os.cpu_count(),
    }


def _campaign_workload(scale: ExperimentScale, environments: Sequence[str],
                       designs: Sequence, lockstep: bool):
    """Build the cross-environment job list for the campaign benchmark.

    Returns ``(jobs, labels)`` where each label identifies one
    (environment, design) cell; ``jobs`` carries one job per cell covering
    the full seed batch.
    """
    config = replace(scale.evaluation_config(), lockstep_training=lockstep)
    seeds = tuple(range(scale.num_seeds))
    jobs: List[EvaluationJob] = []
    labels: List[str] = []
    for environment in environments:
        setup = build_environment(environment, scale)
        trainer = DesignTrainer(setup.video, setup.train_traces,
                                setup.test_traces, config=config, qoe=setup.qoe)
        for index, design in enumerate([None] + list(designs)):
            jobs.append(EvaluationJob(
                trainer=trainer, state_design=design, network_design=None,
                seeds=seeds, environment=environment))
            labels.append(f"{environment}/"
                          f"{'original' if design is None else f'design-{index}'}")
    return jobs, labels


def run_campaign_benchmark(scale: Optional[ExperimentScale] = None,
                           dtype: str = "float32",
                           workers: int = 1,
                           environments: Sequence[str] = ("fcc", "starlink"),
                           num_designs: int = 2,
                           num_seeds: int = 3) -> dict:
    """A/B the campaign scheduler against the flat per-seed fan-out shape.

    Three passes over the same multi-environment workload:

    * **flat mode** — the pre-scheduler execution shape: one work item per
      (design, seed) with lockstep off, i.e. what the old
      ``run_many``-style flat fan-out executed;
    * **campaign mode** — the scheduler's native shape: one job per design
      covering the whole seed batch, trained in lockstep inside the worker,
      writing a cold result store;
    * **replay mode** — campaign mode again on the warm store, measuring
      the resume/skip path.

    Scores must agree exactly across all three (``max_score_delta`` /
    ``replay_score_delta`` are expected to be 0.0).
    """
    scale = replace(scale or DEFAULT_BENCH_SCALE, num_seeds=num_seeds)
    designs = _bench_designs(scale, num_designs)
    previous_dtype = nn.set_default_dtype(dtype)
    try:
        # Flat per-seed shape: singleton seed batches, per-seed training.
        flat_jobs = []
        base_jobs, labels = _campaign_workload(scale, environments,
                                               designs, lockstep=False)
        for job in base_jobs:
            flat_jobs.extend(replace(job, seeds=(seed,)) for seed in job.seeds)
        flat_scheduler = CampaignScheduler(ParallelConfig(max_workers=workers))
        start = time.perf_counter()
        flat_results = flat_scheduler.run(flat_jobs)
        flat_seconds = time.perf_counter() - start
        flat_scores = {}
        last_k = scale.last_k_checkpoints
        for index, label in enumerate(labels):
            chunk = flat_results[index * num_seeds:(index + 1) * num_seeds]
            runs = [run for result in chunk for run in result.runs]
            flat_scores[label] = protocol_score(runs, last_k)

        # Campaign shape: one lockstep job per design, cold store.
        campaign_jobs, labels = _campaign_workload(scale, environments,
                                                   designs, lockstep=True)
        with tempfile.TemporaryDirectory(prefix="bench-campaign-") as root:
            store = ResultStore(root)
            scheduler = CampaignScheduler(ParallelConfig(max_workers=workers),
                                          store=store)
            start = time.perf_counter()
            campaign_results = scheduler.run(campaign_jobs)
            campaign_seconds = time.perf_counter() - start

            start = time.perf_counter()
            replay_results = scheduler.run(campaign_jobs)
            replay_seconds = time.perf_counter() - start
            store_stats = store.statistics()
    finally:
        nn.set_default_dtype(previous_dtype)

    campaign_scores = {label: result.score
                       for label, result in zip(labels, campaign_results)}
    replay_scores = {label: result.score
                     for label, result in zip(labels, replay_results)}
    score_delta = max(abs(flat_scores[k] - campaign_scores[k])
                      for k in flat_scores)
    replay_delta = max(abs(replay_scores[k] - campaign_scores[k])
                       for k in campaign_scores)
    return {
        "workload": {
            "environments": list(environments),
            "train_epochs": scale.train_epochs,
            "checkpoint_interval": scale.checkpoint_interval,
            "num_seeds": num_seeds,
            "num_chunks": scale.num_chunks,
            "dataset_scale": scale.dataset_scale,
            "designs_scored_per_environment": num_designs + 1,
            "dtype": dtype,
            "workers": workers,
        },
        "flat_mode": {"seconds": round(flat_seconds, 3),
                      "scores": flat_scores},
        "campaign_mode": {"seconds": round(campaign_seconds, 3),
                          "scores": campaign_scores},
        "replay_mode": {"seconds": round(replay_seconds, 3),
                        "cached_jobs": sum(r.cached for r in replay_results)},
        "speedup": round(flat_seconds / campaign_seconds, 2),
        "replay_speedup": round(campaign_seconds / max(replay_seconds, 1e-9), 1),
        "max_score_delta": score_delta,
        "replay_score_delta": replay_delta,
        "store": store_stats,
        "cpu_count": os.cpu_count(),
    }


#: Scale used by the committed serving benchmark (``BENCH_serving.json``).
SERVING_SESSIONS = 256


def _session_signature(result) -> list:
    """Bitwise comparison key of one emulated session."""
    return [(r.chunk_index, r.bitrate_index, r.reward, r.download_time_s,
             r.rebuffer_s, r.buffer_s) for r in result.records]


def run_serving_benchmark(num_sessions: int = SERVING_SESSIONS,
                          dataset_scale: float = 0.04,
                          num_chunks: int = 14,
                          seed: int = 0,
                          dtype: str = "float32",
                          environments: Sequence[str] = ("fcc", "starlink"),
                          batch_window_s: float = 0.25) -> dict:
    """A/B the batched fleet harness against the per-session serial loop.

    Three passes stream the same ``num_sessions`` sessions (a mixed trace
    set, sessions assigned round-robin) with the same fresh original agent:

    * **serial reference** — the pre-fleet serving path exactly as the seed
      shipped it: ``bisect`` link inversion and one per-observation Python
      forward per decision, sessions back to back;
    * **serial matched** — the same per-observation loop on the ``prefix``
      link engine (isolates the link-inversion win from the batching win);
    * **fleet** — the event-driven fleet: ``prefix`` engine, every decision
      tick answered by ONE batched policy forward.

    The headline ``speedup`` compares the fleet against the serial
    reference; ``batched_only_speedup`` is fleet vs serial matched.  The
    fleet must be **bit-identical, session for session, to the matched
    serial pass** (same engine ⇒ same bits; the report refuses to claim a
    speedup otherwise), while the cross-engine comparison is held to a
    score tolerance because prefix/bisect inversions agree to ~1e-14
    seconds, not bitwise.
    """
    from repro.core.evaluation import instantiate_agent
    from repro.emulation import EmulationConfig, Fleet, FleetConfig, LinkConfig

    scale = replace(DEFAULT_BENCH_SCALE, dataset_scale=dataset_scale,
                    num_chunks=num_chunks, seed=seed)
    setups = [build_environment(env, scale) for env in environments]
    video = setups[0].video
    traces = [trace for setup in setups for trace in setup.test_traces]

    previous_dtype = nn.set_default_dtype(dtype)
    try:
        agent = instantiate_agent(None, None, video, setups[0].train_traces,
                                  seed=seed)

        def fleet_for(engine: str) -> Fleet:
            link = replace(LinkConfig(), delivery_engine=engine)
            return Fleet(video, traces, config=FleetConfig(
                emulation=EmulationConfig(link=link),
                arrival_process="poisson", batch_window_s=batch_window_s))

        reference_fleet = fleet_for("bisect")
        start = time.perf_counter()
        reference = reference_fleet.serial_reference(agent, num_sessions)
        reference_s = time.perf_counter() - start

        fast_fleet = fleet_for("prefix")
        start = time.perf_counter()
        matched = fast_fleet.serial_reference(agent, num_sessions)
        matched_s = time.perf_counter() - start

        start = time.perf_counter()
        fleet_result = fast_fleet.run(agent, num_sessions)
        fleet_s = time.perf_counter() - start
    finally:
        nn.set_default_dtype(previous_dtype)

    bit_identical = all(
        _session_signature(a) == _session_signature(b)
        for a, b in zip(fleet_result.sessions, matched))
    cross_engine_delta = max(
        abs(a.mean_reward - b.mean_reward)
        for a, b in zip(fleet_result.sessions, reference))
    decisions = sum(len(s.records) for s in fleet_result.sessions)
    metrics = fleet_result.metrics
    return {
        "workload": {
            "environments": list(environments),
            "traces": len(traces),
            "num_sessions": num_sessions,
            "num_chunks": num_chunks,
            "dataset_scale": dataset_scale,
            "decisions": decisions,
            "batch_window_s": batch_window_s,
            "dtype": dtype,
        },
        "serial_reference_mode": {
            "seconds": round(reference_s, 3),
            "decisions_per_s": round(decisions / reference_s, 1),
            "delivery_engine": "bisect",
        },
        "serial_matched_mode": {
            "seconds": round(matched_s, 3),
            "decisions_per_s": round(decisions / matched_s, 1),
            "delivery_engine": "prefix",
        },
        "fleet_mode": {
            "seconds": round(fleet_s, 3),
            "delivery_engine": "prefix",
            "metrics": metrics.to_dict(),
        },
        "speedup": round(reference_s / fleet_s, 2),
        "batched_only_speedup": round(matched_s / fleet_s, 2),
        "bit_identical": bit_identical,
        "max_score_delta": 0.0 if bit_identical else float("inf"),
        "cross_engine_score_delta": cross_engine_delta,
        "mean_qoe_per_chunk": fleet_result.mean_reward,
        "cpu_count": os.cpu_count(),
    }


def _git_sha() -> Optional[str]:
    import subprocess
    try:
        proc = subprocess.run(
            ["git", "rev-parse", "HEAD"], capture_output=True, text=True,
            timeout=10, cwd=os.path.dirname(os.path.abspath(__file__)))
    except (OSError, subprocess.SubprocessError):
        return None
    sha = proc.stdout.strip()
    return sha if proc.returncode == 0 and sha else None


def host_metadata() -> dict:
    """Machine context embedded in JSON reports so committed ``BENCH_*.json``
    files are comparable across machines.  ``bench_regression.py`` ignores
    this block — only ratios are gated, never absolute times."""
    import platform
    return {
        "cpu_count": os.cpu_count(),
        "machine": platform.machine(),
        "platform": platform.platform(),
        "python": platform.python_version(),
        "numpy": np.__version__,
        "default_dtype": str(nn.get_default_dtype()),
        "git_sha": _git_sha(),
    }


def _write_json(report: dict, path: str) -> None:
    report = dict(report)
    report["host"] = host_metadata()
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"report written: {path}")


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="End-to-end benchmark of the design-evaluation engine")
    parser.add_argument("--mode",
                        choices=["engine", "multi-seed", "campaign",
                                 "generated", "serving"],
                        default="engine",
                        help="engine: seed implementation vs optimized engine "
                             "(default); multi-seed: per-seed optimized "
                             "training vs the lockstep multi-seed trainer; "
                             "campaign: flat per-seed fan-out vs the campaign "
                             "scheduler (lockstep jobs + result-store replay) "
                             "on a multi-environment workload; generated: "
                             "autograd-graph fallback vs compiled lockstep "
                             "on a generated-architecture campaign; serving: "
                             "per-session serial emulation vs the batched "
                             "fleet harness on a concurrent-session workload")
    parser.add_argument("--sessions", type=int, default=SERVING_SESSIONS,
                        help="concurrent sessions in --mode serving")
    parser.add_argument("--json", metavar="PATH", default=None,
                        help="write the report as JSON (e.g. benchmarks/BENCH_baseline.json)")
    parser.add_argument("--workers", type=int, default=1,
                        help="worker processes for the optimized mode")
    parser.add_argument("--dtype", choices=["float32", "float64"],
                        default="float32", help="optimized-mode tensor dtype")
    parser.add_argument("--designs", type=int, default=DEFAULT_BENCH_DESIGNS,
                        help="generated designs scored on top of the original")
    parser.add_argument("--num-seeds", type=int, default=5,
                        help="training seeds per design in --mode multi-seed "
                             "and --mode campaign (the paper's protocol "
                             "uses 5)")
    args = parser.parse_args(argv)

    if args.mode == "generated":
        report = run_generated_benchmark(
            dtype=args.dtype, num_seeds=args.num_seeds,
            # --designs defaults to 0 (engine-isolation for the other
            # modes); generated mode defaults to the full spec family.
            num_designs=(args.designs if args.designs > 0
                         else len(GENERATED_BENCH_SPECS)),
            workers=args.workers)
        workload = report["workload"]
        print(f"workload      : original + {workload['designs_scored'] - 1} "
              f"generated designs ({', '.join(workload['encoders'])}), "
              f"{workload['num_seeds']} seeds x "
              f"{workload['train_epochs']} epochs (fcc, {workload['dtype']}, "
              f"workers={workload['workers']})")
        print(f"graph mode    : {report['graph_mode']['seconds']:8.3f} s  "
              "(--no-compile: per-seed autograd-graph training)")
        print(f"compiled mode : {report['compiled_mode']['seconds']:8.3f} s  "
              "(fused kernels, multi-seed lockstep)")
        print(f"speedup       : {report['speedup']:8.2f} x")
        print(f"score delta   : {report['max_score_delta']:8.2e} "
              "(max |graph - compiled|)")
        if args.json:
            _write_json(report, args.json)
        return 0

    if args.mode == "serving":
        report = run_serving_benchmark(num_sessions=args.sessions,
                                       dtype=args.dtype)
        workload = report["workload"]
        metrics = report["fleet_mode"]["metrics"]
        print(f"workload      : {workload['num_sessions']} sessions x "
              f"{workload['num_chunks']} chunks over {workload['traces']} "
              f"traces ({', '.join(workload['environments'])}, "
              f"{workload['dtype']})")
        print(f"serial ref    : {report['serial_reference_mode']['seconds']:8.3f} s  "
              f"({report['serial_reference_mode']['decisions_per_s']:,.0f} "
              "dec/s; bisect inversion, per-observation forwards)")
        print(f"serial matched: {report['serial_matched_mode']['seconds']:8.3f} s  "
              f"({report['serial_matched_mode']['decisions_per_s']:,.0f} "
              "dec/s; prefix inversion, per-observation forwards)")
        print(f"fleet mode    : {report['fleet_mode']['seconds']:8.3f} s  "
              f"({metrics['decisions_per_s']:,.0f} dec/s, mean batch "
              f"{metrics['mean_batch_size']:.1f}, p99 latency "
              f"{metrics['p99_decision_latency_s'] * 1e3:.2f} ms)")
        print(f"speedup       : {report['speedup']:8.2f} x  (serial ref -> fleet)")
        print(f"batching only : {report['batched_only_speedup']:8.2f} x  "
              "(serial matched -> fleet)")
        print(f"bit identical : {report['bit_identical']}  "
              "(fleet vs matched serial, session for session)")
        print(f"score delta   : {report['cross_engine_score_delta']:8.2e} "
              "(max |bisect - prefix| per session)")
        if args.json:
            _write_json(report, args.json)
        return 0 if report["bit_identical"] else 1

    if args.mode == "campaign":
        report = run_campaign_benchmark(dtype=args.dtype,
                                        workers=args.workers,
                                        num_designs=max(args.designs, 2),
                                        num_seeds=args.num_seeds)
        workload = report["workload"]
        cells = (len(workload["environments"])
                 * workload["designs_scored_per_environment"])
        print(f"workload      : {cells} (environment x design) cells over "
              f"{', '.join(workload['environments'])}, "
              f"{workload['num_seeds']} seeds x "
              f"{workload['train_epochs']} epochs ({workload['dtype']}, "
              f"workers={workload['workers']})")
        print(f"flat mode     : {report['flat_mode']['seconds']:8.3f} s  "
              "(one work item per (design, seed), per-seed training)")
        print(f"campaign mode : {report['campaign_mode']['seconds']:8.3f} s  "
              "(one lockstep job per design, cold result store)")
        print(f"replay mode   : {report['replay_mode']['seconds']:8.3f} s  "
              f"({report['replay_mode']['cached_jobs']} jobs served from the "
              "store)")
        print(f"speedup       : {report['speedup']:8.2f} x  (flat -> campaign)")
        print(f"replay speedup: {report['replay_speedup']:8.1f} x  "
              "(campaign -> warm store)")
        print(f"score delta   : {report['max_score_delta']:8.2e} "
              "(max |flat - campaign|)")
        if args.json:
            _write_json(report, args.json)
        return 0

    if args.mode == "multi-seed":
        report = run_multi_seed_benchmark(dtype=args.dtype,
                                          num_seeds=args.num_seeds,
                                          num_designs=args.designs)
        per_seed = report["per_seed_mode"]
        lockstep = report["lockstep_mode"]
        print(f"workload      : original + {args.designs} designs, "
              f"{report['workload']['num_seeds']} seeds x "
              f"{report['workload']['train_epochs']} epochs (fcc, "
              f"{report['workload']['dtype']})")
        print(f"per-seed mode : {per_seed['seconds']:8.3f} s  "
              "(optimized engine, one training session per seed)")
        print(f"lockstep mode : {lockstep['seconds']:8.3f} s  "
              "(stacked per-seed weights, batched fused updates)")
        print(f"speedup       : {report['speedup']:8.2f} x")
        print(f"score delta   : {report['max_score_delta']:8.2e} "
              "(max |per-seed - lockstep|)")
        if args.json:
            _write_json(report, args.json)
        return 0

    report = run_benchmark(workers=args.workers, dtype=args.dtype,
                           num_designs=args.designs)
    seed_mode = report["seed_mode"]
    optimized = report["optimized_mode"]
    print(f"workload      : original + {args.designs} designs, "
          f"{report['workload']['num_seeds']} seeds x "
          f"{report['workload']['train_epochs']} epochs (fcc)")
    print(f"seed mode     : {seed_mode['seconds']:8.3f} s  (segment walk, serial eval, "
          "graph forward, float64)")
    print(f"optimized mode: {optimized['seconds']:8.3f} s  (prefix sum, batched eval, "
          f"folded forward, {optimized['dtype']}, workers={optimized['workers']})")
    print(f"speedup       : {report['speedup']:8.2f} x")
    print(f"score delta   : {report['max_score_delta']:8.2e} (max |seed - optimized|)")
    if args.json:
        _write_json(report, args.json)
    return 0


if __name__ == "__main__":
    sys.exit(main())
