"""Benchmark scale presets.

All benchmarks exercise the exact code paths of the paper's experiments, but
at a reduced scale so the whole harness runs on a laptop in minutes rather
than the cluster-months of the original study (3,000 designs x 40,000 epochs
x 5 seeds).  The presets below document the scale used by each benchmark;
raising them toward the published values only changes runtime, not code.
"""

from __future__ import annotations

from repro.analysis import ExperimentScale

#: Scale used by the Table 3 benchmark (per environment x profile cell).
TABLE3_SCALE = ExperimentScale(
    dataset_scale=0.04,
    num_chunks=14,
    train_epochs=50,
    checkpoint_interval=10,
    last_k_checkpoints=3,
    num_seeds=2,
    num_designs=8,
    max_trained_designs=4,
    seed=0,
)

#: Scale used by the Figure 3 / Figure 4 training-curve benchmarks.
CURVE_SCALE = ExperimentScale(
    dataset_scale=0.04,
    num_chunks=14,
    train_epochs=60,
    checkpoint_interval=10,
    last_k_checkpoints=3,
    num_seeds=2,
    num_designs=10,
    max_trained_designs=5,
    seed=0,
)

#: Scale used by the Table 4 emulation benchmark.
EMULATION_SCALE = ExperimentScale(
    dataset_scale=0.04,
    num_chunks=14,
    train_epochs=50,
    checkpoint_interval=10,
    last_k_checkpoints=3,
    num_seeds=1,
    num_designs=6,
    max_trained_designs=3,
    seed=0,
)

#: Scale used by the Table 5 combination benchmark.
COMBINATION_SCALE = ExperimentScale(
    dataset_scale=0.04,
    num_chunks=14,
    train_epochs=50,
    checkpoint_interval=10,
    last_k_checkpoints=3,
    num_seeds=2,
    num_designs=10,
    max_trained_designs=5,
    seed=0,
)

#: Scale used to build the Figure 5 early-stopping corpus.
CORPUS_SCALE = ExperimentScale(
    dataset_scale=0.03,
    num_chunks=12,
    train_epochs=24,
    checkpoint_interval=8,
    last_k_checkpoints=2,
    num_seeds=1,
    seed=0,
)

#: Scale used by the ablation benchmarks.
ABLATION_SCALE = ExperimentScale(
    dataset_scale=0.03,
    num_chunks=12,
    train_epochs=30,
    checkpoint_interval=10,
    last_k_checkpoints=2,
    num_seeds=1,
    num_designs=10,
    max_trained_designs=6,
    seed=0,
)
