"""Benchmark: Figure 3 — training curves of the best generated states.

Figure 3 plots the test score of the best generated state against the original
design over the course of training, per environment.  This benchmark
regenerates the same series (epoch, test score) for two representative
environments — Starlink (largest gain in the paper) and 4G — and prints them
as ASCII charts plus raw data points.

Reproduction target: by the end of training the best-generated curve sits at
or above the original curve, and the gap on Starlink is clearly visible.
"""

from __future__ import annotations

import pytest

from repro.analysis import render_ascii_curves, render_table, run_component_experiment

from bench_scales import CURVE_SCALE
from conftest import emit

ENVIRONMENTS = ("starlink", "4g")
PROFILE = "gpt-4"


def _run_all():
    return {env: run_component_experiment(env, "state", PROFILE, CURVE_SCALE)
            for env in ENVIRONMENTS}


@pytest.mark.benchmark(group="figure3")
def test_figure3_state_training_curves(benchmark, report_file):
    results = benchmark.pedantic(_run_all, rounds=1, iterations=1)

    blocks = []
    for environment, result in results.items():
        blocks.append(render_ascii_curves(result.comparison, width=50, height=10))
        rows = []
        for curve in result.comparison.curves:
            for epoch, score in zip(curve.epochs, curve.scores):
                rows.append([environment.upper(), curve.label, epoch, f"{score:.3f}"])
        blocks.append(render_table(["Dataset", "Curve", "Epoch", "Test Score"], rows))
    body = "\n\n".join(blocks)
    report_file("figure3_state_curves", body)
    emit("Figure 3: best generated state vs. original across training", body)

    gaps = {}
    for environment, result in results.items():
        comparison = result.comparison
        assert len(comparison.curves) == 2, f"{environment}: missing a curve"
        original = comparison.curve("Original")
        generated = comparison.curve("Best Generated")
        # Both curves contain several checkpoints (the x-axis of the figure).
        assert len(original.scores) >= 3
        assert len(generated.scores) >= 3
        # The generated curve never collapses far below the original.
        tolerance = 0.4 * abs(original.final_score) + 0.3
        assert generated.final_score >= original.final_score - tolerance, (
            f"{environment}: generated curve ends far below the original")
        gaps[environment] = generated.final_score - original.final_score

    # The figure's qualitative takeaway: the best generated state ends at or
    # above the original in at least one of the large-gain environments, and
    # somewhere the gap is clearly visible.
    assert max(gaps.values()) > 0.0, "generated states never overtook the original"
